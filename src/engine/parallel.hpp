// Multi-core batch pipeline over the engine: stager -> workers -> sink.
//
// Batches are self-contained units of work, so horizontal scale falls out
// of handing whole EncodeBatch / DecodeBatch units to a fixed pool of
// worker threads. The caller thread is both the stager and the sink: it
// routes each submitted unit to a worker over that worker's SPSC input
// ring, and collects finished units from the workers' SPSC output rings.
//
// Dictionary ownership (ParallelOptions::ownership):
//
//   * per_flow (default) — every flow owns a private Engine (dictionary,
//     transform, stats) on the worker it is steered to. Units of one flow
//     are processed in submission order by one thread, so the delivered
//     output is byte-identical to running each flow through a
//     single-threaded Engine; dictionary memory scales with the number of
//     flows.
//   * shared — all workers of the pipeline's direction consult and teach
//     ONE gd::ConcurrentShardedDictionary (striped writes; lock-free
//     seqlock reads by default — ParallelOptions::read_path), the
//     paper's one-table-per-direction switch reality: flows deduplicate
//     against each other and dictionary memory no longer scales with
//     workers or flows. With the ordered drain, each worker splits its
//     unit into transform -> resolve -> emit phases (engine/engine.hpp)
//     and only the resolve (dictionary) phases are sequenced — PER SHARD,
//     via per-shard turnstiles — while transforms and serialization run
//     concurrently. Each resolve gathers its unit's dictionary operations
//     into one batched plan (gd::BatchOp) grouped by shard, and basis
//     hashing happens in the concurrent transform/parse phase, so each
//     gate's critical section is one shard's map work and nothing else.
//     The dictionary still replays, per shard, the exact operation order
//     a single-threaded Engine would produce, making the parallel output
//     byte-identical to the serial engine and replayable by any decoder
//     (tests/flow_steering_test.cpp and tests/shard_turnstile_test.cpp
//     assert both, under Zipf-skewed flows).
//
// Per-shard turnstile admission (shared + ordered mode): admission is two
// phase. After its (concurrent) transform+plan a unit passes a short
// REGISTRATION turnstile in global submission order, where it takes one
// ticket per shard its plan touches — registration holds no locks and
// does no dictionary work, it only assigns tickets. Each shard then has
// its own gate admitting ticket holders in ticket order: a unit waits
// only behind EARLIER units that touch the SAME shards, so units with
// disjoint shard footprints resolve concurrently. Per-shard ticket order
// equals global submission order restricted to that shard — exactly the
// per-shard op sequence a serial engine produces — which preserves byte-
// identity. Deadlock-free by construction: a unit's wait-for edges always
// point at units registered (= submitted) before it, so the wait graph is
// acyclic; gates advance even for failed units. The shared service counts
// admissions that actually blocked in DictionaryStats::turnstile_waits.
//
// Flow steering (ParallelOptions::steering):
//
//   * pinned — flow % workers, the historical static pin.
//   * load_aware — power-of-two-choices on the current per-worker queue
//     depth at a flow's FIRST unit, sticky thereafter (a flow never
//     migrates, preserving per-flow submission order on one ring).
//   * topology_aware — load_aware, but both candidates are drawn from the
//     least-loaded CPU package / cache domain (common/topology.hpp, with
//     a portable single-domain fallback that degrades to load_aware), so
//     a flow's units and the units they contend with stay on one socket's
//     caches. ParallelOptions::worker_domains overrides the probe for
//     tests and explicit placement. Placement never affects output bytes.
//
// Work stealing (ParallelOptions::work_stealing, requires shared +
// ordered): a worker whose own ring runs dry pops the HEAD of another
// worker's input ring (pops are serialized by a tiny per-worker mutex;
// pushes stay single-producer). Stealing only moves WHERE a unit's
// transform/emit run — the sequenced resolve phases pin the dictionary
// order — so it is correct precisely because the dictionary is shared,
// and it converts a Zipf-skewed flow distribution from a single-worker
// bottleneck into pool-wide work. Head-stealing plus FIFO rings keeps the
// registration turnstile deadlock-free: the oldest unregistered unit is
// always at a ring head or already being processed.
//
// Ordered drain: with `ordered` set (the default) the sink callback
// observes units in global submission order, regardless of which worker
// finished first, via a bounded reorder window sized to the total number
// of in-flight units.
//
// Memory discipline matches the engine core: job slots (with their batch
// arenas and split-phase scratch) are fixed at construction and recycled
// through the rings, so in steady state a submit/flush cycle performs zero
// heap allocations on any thread (tests/engine_alloc_test.cpp asserts it
// for both ownership modes).
#pragma once

#include <atomic>
#include <cstdint>
#include <exception>
#include <functional>
#include <memory>
#include <mutex>
#include <optional>
#include <span>
#include <thread>
#include <unordered_map>
#include <vector>

#include "common/contracts.hpp"
#include "common/rng.hpp"
#include "common/topology.hpp"
#include "engine/batch.hpp"
#include "engine/engine.hpp"
#include "gd/concurrent_dictionary.hpp"

namespace zipline::engine {

/// Who owns the dictionary the workers consult (see file comment).
enum class DictionaryOwnership : std::uint8_t {
  per_flow,  ///< private Engine + dictionary per flow (historical default)
  shared,    ///< one ConcurrentShardedDictionary for the whole direction
};

/// How flows pick their (sticky) worker.
enum class FlowSteering : std::uint8_t {
  pinned,      ///< flow % workers
  load_aware,  ///< power-of-two-choices on queue depth at first unit
  /// Two choices WITHIN the least-loaded CPU package / cache domain
  /// (common/topology.hpp probe, or ParallelOptions::worker_domains);
  /// degrades to load_aware when only one domain is visible.
  topology_aware,
};

struct ParallelOptions {
  /// Fixed worker-pool size. One worker with ordered drain degenerates to
  /// the single-threaded engine with a thread in the middle.
  std::size_t workers = 1;
  /// In-flight units per worker (ring depth / reorder window share).
  std::size_t queue_depth = 16;
  /// Dictionary shards (gd/sharded_dictionary.hpp): per flow engine in
  /// per_flow mode, lock stripes of the one service in shared mode.
  std::size_t dictionary_shards = 1;
  /// How the shared service serves reads (shared mode only): the default
  /// seqlock path answers lookups/peeks/fetches from a per-shard read
  /// mirror without blocking (writes stay striped and bump the shard's
  /// sequence); `locked` takes a stripe mutex per op, the historical
  /// arrangement. Byte-identical either way — seqlock reads are
  /// state-equivalent to their locked counterparts.
  gd::ReadPath read_path = gd::ReadPath::seqlock;
  gd::EvictionPolicy policy = gd::EvictionPolicy::lru;
  bool learn = true;
  /// Deliver units in global submission order (byte-identical to the
  /// serial path). Unordered delivery trades that for lower latency; in
  /// shared mode it also drops the resolve sequencing, trading dictionary
  /// replayability for maximum concurrency.
  bool ordered = true;
  DictionaryOwnership ownership = DictionaryOwnership::per_flow;
  FlowSteering steering = FlowSteering::pinned;
  /// Idle workers pop the head of other workers' rings. Requires shared
  /// ownership (any worker may then encode any flow) and the ordered
  /// drain (whose resolve turnstiles preserve per-flow order).
  bool work_stealing = false;
  /// topology_aware steering only: domain index per worker (must have
  /// exactly `workers` entries when non-empty). Empty = probe the machine
  /// via common::Topology::detect(). Lets tests and explicit placements
  /// inject a topology deterministically.
  std::vector<std::uint32_t> worker_domains;
};

namespace detail {

/// Fixed-capacity ring of 64-bit values with one producer cursor and one
/// consumer cursor. Capacity rounds up to a power of two. Single producer
/// always; a single consumer normally, or several consumers serialized by
/// an external mutex (the work-stealing pop path).
class SpscRing {
 public:
  explicit SpscRing(std::size_t capacity);

  bool try_push(std::uint64_t value) noexcept;
  bool try_pop(std::uint64_t& value) noexcept;

 private:
  std::vector<std::uint64_t> slots_;
  std::size_t mask_ = 0;
  alignas(64) std::atomic<std::size_t> head_{0};  // consumer cursor
  alignas(64) std::atomic<std::size_t> tail_{0};  // producer cursor
};

}  // namespace detail

/// Encode stage: payload bytes -> EncodeBatch. The payload memory must
/// stay valid until the unit is delivered to the sink.
struct EncodeStage {
  using Input = std::span<const std::uint8_t>;
  using Output = EncodeBatch;
  using Scratch = EncodeUnit;
  static void run(Engine& engine, const Input& in, Output& out) {
    out.clear();
    engine.encode_payload(in, out);
  }
  static void transform(Engine& engine, const Input& in, Scratch& scratch) {
    engine.encode_transform(in, scratch);
  }
  static void resolve(Engine& engine, Scratch& scratch) {
    engine.encode_resolve(scratch);
  }
  // Split resolve for the per-shard turnstiles: plan (pure) -> the
  // pipeline's per-shard Engine::resolve_shard calls -> finish (pure).
  static void plan(Engine& engine, Scratch& scratch) {
    engine.encode_resolve_plan(scratch);
  }
  static void finish(Engine& engine, Scratch& scratch) {
    engine.encode_resolve_finish(scratch);
  }
  static void emit(Engine& engine, const Scratch& scratch, const Input&,
                   Output& out) {
    out.clear();
    engine.encode_emit(scratch, out);
  }
};

/// Decode stage: encoded batch -> DecodeBatch. The input batch must stay
/// valid until the unit is delivered to the sink.
struct DecodeStage {
  using Input = const EncodeBatch*;
  using Output = DecodeBatch;
  using Scratch = DecodeUnit;
  static void run(Engine& engine, const Input& in, Output& out) {
    out.clear();
    engine.decode_batch(*in, out);
  }
  static void transform(Engine& engine, const Input& in, Scratch& scratch) {
    engine.decode_parse(*in, scratch);
  }
  static void resolve(Engine& engine, Scratch& scratch) {
    engine.decode_resolve(scratch);
  }
  static void plan(Engine& engine, Scratch& scratch) {
    engine.decode_resolve_plan(scratch);
  }
  static void finish(Engine& engine, Scratch& scratch) {
    engine.decode_resolve_finish(scratch);
  }
  static void emit(Engine& engine, const Scratch& scratch, const Input&,
                   Output& out) {
    out.clear();
    engine.decode_emit(scratch, out);
  }
};

template <typename Stage>
class ParallelPipeline {
 public:
  /// One finished unit of work, streamed to the sink. The output view is
  /// valid only for the duration of the sink call — the slot (and its
  /// arena) is recycled as soon as the sink returns.
  struct Unit {
    std::uint64_t seq = 0;    ///< global submission sequence number
    std::uint32_t flow = 0;
    const typename Stage::Output* output = nullptr;
  };
  using Sink = std::function<void(const Unit&)>;

  ParallelPipeline(const gd::GdParams& params, const ParallelOptions& options,
                   Sink sink);
  ~ParallelPipeline();

  ParallelPipeline(const ParallelPipeline&) = delete;
  ParallelPipeline& operator=(const ParallelPipeline&) = delete;

  /// Stages one unit for `flow`. Blocks (draining finished units into the
  /// sink) when the flow's worker has no free job slot.
  void submit(std::uint32_t flow, typename Stage::Input input);

  /// Blocks until every submitted unit has been delivered to the sink.
  /// If any unit's stage threw, rethrows the first such exception here on
  /// the caller thread (the failed unit is not delivered to the sink;
  /// later units still complete). Worker threads never terminate the
  /// process on a stage exception.
  void flush();

  [[nodiscard]] std::uint64_t submitted() const noexcept { return submitted_; }
  [[nodiscard]] std::uint64_t delivered() const noexcept { return delivered_; }
  [[nodiscard]] const ParallelOptions& options() const noexcept {
    return options_;
  }
  [[nodiscard]] const gd::GdParams& params() const noexcept { return params_; }

  /// Statistics of the private engine serving `flow`, or nullptr if the
  /// flow never submitted (or the pipeline runs a shared dictionary, where
  /// flows have no private engine — use aggregate_stats()). Only
  /// meaningful when the pipeline is quiescent (after flush() and before
  /// the next submit()).
  [[nodiscard]] const EngineStats* flow_stats(std::uint32_t flow) const;

  /// Sum of every engine's statistics (per-flow engines or per-worker
  /// shared-mode engines). Quiescent-only, like flow_stats().
  [[nodiscard]] EngineStats aggregate_stats() const;

  /// The one dictionary service all workers share, or nullptr in per_flow
  /// mode. There is exactly one per pipeline — dictionary memory does not
  /// scale with the worker count.
  [[nodiscard]] const gd::ConcurrentShardedDictionary* shared_dictionary()
      const noexcept {
    return service_.has_value() ? &*service_ : nullptr;
  }

  /// The worker a flow is stuck to, if it ever submitted (diagnostics).
  [[nodiscard]] std::optional<std::size_t> flow_worker(
      std::uint32_t flow) const {
    const auto it = flow_worker_.find(flow);
    if (it == flow_worker_.end()) return std::nullopt;
    return static_cast<std::size_t>(it->second);
  }

 private:
  struct Job {
    std::uint64_t seq = 0;
    std::uint32_t flow = 0;
    typename Stage::Input input{};
    typename Stage::Output output;
    typename Stage::Scratch scratch;  ///< split-phase staging (shared mode)
    /// Per-shard admission tickets taken at registration (shared ordered
    /// mode; sized to dictionary_shards at construction) and the unit's
    /// touched-shard list (grow-free: reserved to dictionary_shards).
    std::vector<std::uint64_t> tickets;
    std::vector<std::uint32_t> touched;
    std::exception_ptr error;  ///< stage failure, ferried to the caller
  };

  struct Worker {
    Worker(const gd::GdParams& params, const ParallelOptions& options,
           gd::ConcurrentShardedDictionary* service, std::size_t index);
    std::size_t index;
    std::vector<Job> jobs;            // fixed slot pool, arenas recycled
    detail::SpscRing in;              // stager -> worker (slot indices)
    detail::SpscRing out;             // worker -> sink (owner/slot pairs)
    std::mutex pop_mutex;             // serializes in-ring pops (stealing)
    std::vector<std::uint32_t> free_slots;  // caller-owned free stack
    alignas(64) std::atomic<std::uint64_t> doorbell{0};
    std::unordered_map<std::uint32_t, Engine> engines;  // per_flow mode
    std::optional<Engine> engine;                       // shared mode
    std::thread thread;
  };

  /// Entry of the ordered-drain reorder window, indexed by seq modulo the
  /// window size (which bounds the number of in-flight units, so slots
  /// never collide).
  struct Pending {
    std::uint32_t worker = 0;  ///< owner of the job slot
    std::uint32_t slot = 0;
    bool valid = false;
  };

  static std::uint64_t pack(std::size_t worker, std::uint32_t slot) noexcept {
    return (static_cast<std::uint64_t>(worker) << 32) | slot;
  }

  void worker_loop(Worker& self);
  [[nodiscard]] bool next_job(Worker& self, Worker*& owner,
                              std::uint32_t& slot);
  [[nodiscard]] bool try_claim(Worker& self, Worker*& owner,
                               std::uint32_t& slot);
  [[nodiscard]] bool try_pop_job(Worker& worker, std::uint32_t& slot);
  void run_private(Worker& self, Job& job);
  void run_shared(Worker& self, Job& job);
  [[nodiscard]] std::uint32_t steer(std::uint32_t flow);
  void pump(bool may_block);
  void deliver(Worker& owner, std::uint32_t slot);

  gd::GdParams params_;
  ParallelOptions options_;
  Sink sink_;
  std::optional<gd::ConcurrentShardedDictionary> service_;  // shared mode
  std::vector<std::unique_ptr<Worker>> workers_;
  /// One admission gate per dictionary shard (shared + ordered mode).
  /// next_ticket is a PLAIN field: it is only ever read/written while the
  /// registration turnstile admits exactly one unit, and the turnstile's
  /// release/acquire handoff chain orders those accesses. turn is the
  /// gate's admission counter, advanced by every ticket holder (even
  /// failed ones).
  struct alignas(64) ShardGate {
    std::uint64_t next_ticket = 0;
    std::atomic<std::uint64_t> turn{0};
  };

  std::atomic<bool> stop_{false};
  alignas(64) std::atomic<std::uint64_t> completions_{0};
  /// Registration turnstile (shared + ordered mode): units pass it in
  /// global submission order to take their per-shard tickets — no locks,
  /// no dictionary work, just ticket assignment. Advanced by every unit,
  /// even failed ones (which register an empty footprint).
  alignas(64) std::atomic<std::uint64_t> register_turn_{0};
  std::unique_ptr<ShardGate[]> gates_;  // [dictionary_shards], shared mode
  /// Pool-wide doorbell idle workers wait on when stealing is enabled (a
  /// per-worker doorbell would let queued work strand behind a sleeping
  /// thief).
  alignas(64) std::atomic<std::uint64_t> steal_doorbell_{0};

  // Caller-thread state (stager + sink side).
  std::uint64_t submitted_ = 0;
  std::uint64_t delivered_ = 0;
  std::uint64_t next_expected_ = 0;
  std::vector<Pending> pending_;
  std::unordered_map<std::uint32_t, std::uint32_t> flow_worker_;  // sticky
  Rng steer_rng_{0x57EE21};
  // topology_aware steering tables (built at construction; empty
  // otherwise): worker -> domain, and each domain's member workers.
  std::vector<std::uint32_t> worker_domain_;
  std::vector<std::vector<std::uint32_t>> domain_members_;
  std::exception_ptr first_error_;
};

using ParallelEncoder = ParallelPipeline<EncodeStage>;
using ParallelDecoder = ParallelPipeline<DecodeStage>;

// --- member definitions ----------------------------------------------------
// In the header so consumers can instantiate the pipeline over their own
// stages (gd/stream.cpp decodes whole containers this way); the common
// encode/decode stages are compiled once in parallel.cpp.

template <typename Stage>
ParallelPipeline<Stage>::Worker::Worker(
    const gd::GdParams& params, const ParallelOptions& options,
    gd::ConcurrentShardedDictionary* service, std::size_t index)
    : index(index),
      jobs(options.queue_depth),
      in(options.queue_depth),
      // A stealing worker can complete jobs owned by every ring between
      // two pumps, so its out ring must hold the whole in-flight window.
      out(options.work_stealing ? options.workers * options.queue_depth
                                : options.queue_depth) {
  free_slots.reserve(options.queue_depth);
  for (std::size_t slot = options.queue_depth; slot-- > 0;) {
    free_slots.push_back(static_cast<std::uint32_t>(slot));
  }
  if (service != nullptr) {
    // Size the per-shard ticket arrays up front so the ordered admission
    // path allocates nothing in steady state (engine_alloc_test).
    for (Job& job : jobs) {
      job.tickets.resize(options.dictionary_shards);
      job.touched.reserve(options.dictionary_shards);
    }
    engine.emplace(params, *service, options.learn);
  }
}

template <typename Stage>
ParallelPipeline<Stage>::ParallelPipeline(const gd::GdParams& params,
                                          const ParallelOptions& options,
                                          Sink sink)
    : params_(params), options_(options), sink_(std::move(sink)) {
  ZL_EXPECTS(options_.workers >= 1 && options_.workers < (1u << 16));
  ZL_EXPECTS(options_.queue_depth >= 1);
  ZL_EXPECTS((!options_.work_stealing ||
              (options_.ownership == DictionaryOwnership::shared &&
               options_.ordered)) &&
             "work stealing requires the shared dictionary (any worker may "
             "then encode any flow) and the ordered drain");
  if (options_.ownership == DictionaryOwnership::shared) {
    service_.emplace(params_.dictionary_capacity(), options_.policy,
                     options_.dictionary_shards, options_.read_path);
    gates_ = std::make_unique<ShardGate[]>(options_.dictionary_shards);
  }
  if (options_.steering == FlowSteering::topology_aware) {
    worker_domain_ = options_.worker_domains.empty()
                         ? common::worker_domains(common::Topology::detect(),
                                                  options_.workers)
                         : options_.worker_domains;
    ZL_EXPECTS(worker_domain_.size() == options_.workers &&
               "worker_domains must name a domain per worker");
    std::uint32_t domains = 1;
    for (const std::uint32_t d : worker_domain_) {
      domains = std::max(domains, d + 1);
    }
    domain_members_.resize(domains);
    for (std::size_t i = 0; i < worker_domain_.size(); ++i) {
      domain_members_[worker_domain_[i]].push_back(
          static_cast<std::uint32_t>(i));
    }
  }
  workers_.reserve(options_.workers);
  for (std::size_t i = 0; i < options_.workers; ++i) {
    workers_.push_back(std::make_unique<Worker>(
        params_, options_, service_.has_value() ? &*service_ : nullptr, i));
  }
  pending_.resize(options_.workers * options_.queue_depth);
  for (auto& worker : workers_) {
    Worker* w = worker.get();
    w->thread = std::thread([this, w] { worker_loop(*w); });
  }
}

template <typename Stage>
ParallelPipeline<Stage>::~ParallelPipeline() {
  try {
    flush();
  } catch (...) {
    // Teardown without a prior flush(): the error already missed its
    // delivery point; dropping it beats terminating.
  }
  stop_.store(true, std::memory_order_release);
  steal_doorbell_.fetch_add(1, std::memory_order_release);
  steal_doorbell_.notify_all();
  for (auto& worker : workers_) {
    worker->doorbell.fetch_add(1, std::memory_order_release);
    worker->doorbell.notify_one();
  }
  for (auto& worker : workers_) {
    if (worker->thread.joinable()) worker->thread.join();
  }
}

template <typename Stage>
bool ParallelPipeline<Stage>::try_pop_job(Worker& worker,
                                          std::uint32_t& slot) {
  std::uint64_t value = 0;
  if (options_.work_stealing) {
    // Multiple consumers (owner + thieves): serialize pops. Pushes remain
    // single-producer (the stager) and never take the mutex.
    std::lock_guard<std::mutex> guard(worker.pop_mutex);
    if (!worker.in.try_pop(value)) return false;
  } else {
    if (!worker.in.try_pop(value)) return false;
  }
  slot = static_cast<std::uint32_t>(value);
  return true;
}

template <typename Stage>
bool ParallelPipeline<Stage>::try_claim(Worker& self, Worker*& owner,
                                        std::uint32_t& slot) {
  if (try_pop_job(self, slot)) {
    owner = &self;
    return true;
  }
  if (options_.work_stealing) {
    for (std::size_t k = 1; k < workers_.size(); ++k) {
      Worker& victim = *workers_[(self.index + k) % workers_.size()];
      if (try_pop_job(victim, slot)) {
        owner = &victim;
        return true;
      }
    }
  }
  return false;
}

template <typename Stage>
bool ParallelPipeline<Stage>::next_job(Worker& self, Worker*& owner,
                                       std::uint32_t& slot) {
  std::atomic<std::uint64_t>& bell =
      options_.work_stealing ? steal_doorbell_ : self.doorbell;
  for (;;) {
    // Snapshot the doorbell before the claim: a push (or stop) landing
    // after the snapshot changes the value, so the wait below cannot
    // sleep through it.
    const std::uint64_t seen = bell.load(std::memory_order_acquire);
    if (try_claim(self, owner, slot)) return true;
    if (stop_.load(std::memory_order_acquire)) return false;
    bell.wait(seen, std::memory_order_acquire);
  }
}

template <typename Stage>
void ParallelPipeline<Stage>::run_private(Worker& self, Job& job) {
  try {
    // One private engine per flow: created on the flow's first unit
    // (warmup), found allocation-free afterwards. Without stealing a job
    // only ever runs on its flow's sticky worker, so the flow's engine
    // lives here.
    const auto [it, inserted] =
        self.engines.try_emplace(job.flow, params_, options_.policy,
                                 options_.learn, options_.dictionary_shards);
    Stage::run(it->second, job.input, job.output);
  } catch (...) {
    // Never let a stage failure (e.g. a contract violation on hostile
    // input) escape the thread and terminate the process; flush()
    // rethrows it on the caller thread instead.
    job.error = std::current_exception();
  }
}

template <typename Stage>
void ParallelPipeline<Stage>::run_shared(Worker& self, Job& job) {
  Engine& engine = *self.engine;
  if (!options_.ordered) {
    // Free-running mode: per-shard locks make every dictionary op safe,
    // and the compound miss-then-learn transitions (lookup_or_insert /
    // insert_if_absent) are atomic per stripe, so racing learners of one
    // fresh basis cannot double-insert. The op interleaving (hence
    // learning) is nondeterministic.
    try {
      Stage::run(engine, job.input, job.output);
    } catch (...) {
      job.error = std::current_exception();
    }
    return;
  }
  // Ordered mode, two-phase per-shard admission (see file comment): the
  // pure transform AND the plan (op gathering + shard grouping, no
  // dictionary access) run concurrently; the unit then registers in
  // global submission order, taking one ticket per touched shard, and is
  // admitted to each shard's dictionary work in ticket order. Per-shard
  // ticket order == global submission order restricted to that shard —
  // exactly the per-shard op sequence a serial engine produces — which is
  // the property the byte-identity and decode guarantees rest on.
  bool planned = false;
  try {
    Stage::transform(engine, job.input, job.scratch);
    Stage::plan(engine, job.scratch);
    planned = true;
  } catch (...) {
    job.error = std::current_exception();
  }
  job.touched.clear();
  if (planned) {
    for (std::size_t s = 0; s < options_.dictionary_shards; ++s) {
      if (engine.resolve_plan_touches(s)) {
        job.touched.push_back(static_cast<std::uint32_t>(s));
      }
    }
  }
  // Registration turnstile: take tickets in submission order. A failed
  // (or shardless) unit registers an empty footprint — it holds no
  // tickets, so no later unit ever waits on it at a gate — and the
  // turnstile itself advances even on failure, or every later unit would
  // deadlock behind the gap.
  std::uint64_t turn = register_turn_.load(std::memory_order_acquire);
  while (turn != job.seq) {
    register_turn_.wait(turn, std::memory_order_acquire);
    turn = register_turn_.load(std::memory_order_acquire);
  }
  for (const std::uint32_t s : job.touched) {
    job.tickets[s] = gates_[s].next_ticket++;
  }
  register_turn_.store(job.seq + 1, std::memory_order_release);
  register_turn_.notify_all();
  // Per-shard admission: wait only behind earlier ticket holders of the
  // SAME shard. Units with disjoint footprints pass their gates without
  // ever waiting on each other. Every gate advances even when this unit's
  // work failed, keeping later ticket holders live.
  for (const std::uint32_t s : job.touched) {
    ShardGate& gate = gates_[s];
    const std::uint64_t ticket = job.tickets[s];
    std::uint64_t admitted = gate.turn.load(std::memory_order_acquire);
    if (admitted != ticket) {
      // Count only admissions that actually block: the disjoint-footprint
      // regime leaves this counter at zero.
      service_->note_turnstile_wait();
      do {
        gate.turn.wait(admitted, std::memory_order_acquire);
        admitted = gate.turn.load(std::memory_order_acquire);
      } while (admitted != ticket);
    }
    if (!job.error) {
      try {
        engine.resolve_shard(s);
      } catch (...) {
        job.error = std::current_exception();
      }
    }
    gate.turn.store(ticket + 1, std::memory_order_release);
    gate.turn.notify_all();
  }
  if (!job.error) {
    try {
      Stage::finish(engine, job.scratch);
      Stage::emit(engine, job.scratch, job.input, job.output);
    } catch (...) {
      job.error = std::current_exception();
    }
  }
}

template <typename Stage>
void ParallelPipeline<Stage>::worker_loop(Worker& self) {
  Worker* owner = nullptr;
  std::uint32_t slot = 0;
  while (next_job(self, owner, slot)) {
    Job& job = owner->jobs[slot];
    job.error = nullptr;
    if (options_.ownership == DictionaryOwnership::shared) {
      run_shared(self, job);
    } else {
      run_private(self, job);
    }
    // Completions go out through the PROCESSING worker's ring (it is that
    // ring's single producer); the packed value names the slot's owner.
    const bool pushed = self.out.try_push(pack(owner->index, slot));
    ZL_ASSERT(pushed && "output ring sized to the in-flight window");
    completions_.fetch_add(1, std::memory_order_release);
    completions_.notify_one();
  }
}

template <typename Stage>
void ParallelPipeline<Stage>::deliver(Worker& owner, std::uint32_t slot) {
  Job& job = owner.jobs[slot];
  // Account the unit and recycle the slot BEFORE the sink runs: a throwing
  // sink then propagates to the caller with the pipeline still consistent
  // (no leaked slot, no flush()/destructor hang). The job's output stays
  // intact through the sink call — free_slots is only consumed by
  // submit(), on this same thread.
  owner.free_slots.push_back(slot);
  ++delivered_;
  if (job.error) {
    if (!first_error_) first_error_ = job.error;
    job.error = nullptr;
  } else if (sink_) {
    sink_(Unit{job.seq, job.flow, &job.output});
  }
}

template <typename Stage>
void ParallelPipeline<Stage>::pump(bool may_block) {
  // Snapshot before scanning: a completion that lands mid-scan bumps the
  // counter past the snapshot, so a blocking wait returns immediately.
  const std::uint64_t seen = completions_.load(std::memory_order_acquire);
  bool progressed = false;
  for (auto& worker : workers_) {
    std::uint64_t value = 0;
    while (worker->out.try_pop(value)) {
      progressed = true;
      const auto owner = static_cast<std::uint32_t>(value >> 32);
      const auto slot = static_cast<std::uint32_t>(value);
      if (options_.ordered) {
        Pending& entry =
            pending_[workers_[owner]->jobs[slot].seq % pending_.size()];
        ZL_ASSERT(!entry.valid && "reorder window sized to in-flight units");
        entry = {owner, slot, true};
      } else {
        deliver(*workers_[owner], slot);
      }
    }
  }
  if (options_.ordered) {
    for (;;) {
      Pending& entry = pending_[next_expected_ % pending_.size()];
      if (!entry.valid) break;
      entry.valid = false;
      Worker& owner = *workers_[entry.worker];
      ZL_ASSERT(owner.jobs[entry.slot].seq == next_expected_);
      ++next_expected_;
      deliver(owner, entry.slot);
    }
  }
  if (!progressed && may_block && delivered_ < submitted_) {
    completions_.wait(seen, std::memory_order_acquire);
  }
}

template <typename Stage>
std::uint32_t ParallelPipeline<Stage>::steer(std::uint32_t flow) {
  const auto it = flow_worker_.find(flow);
  if (it != flow_worker_.end()) return it->second;
  std::uint32_t choice;
  if (options_.steering == FlowSteering::pinned || options_.workers == 1) {
    choice = static_cast<std::uint32_t>(flow % options_.workers);
  } else if (options_.steering == FlowSteering::topology_aware &&
             domain_members_.size() > 1) {
    // Pick the least-loaded cache domain by MEAN queue depth (compared
    // cross-multiplied so unequal domain sizes don't skew it; ties go to
    // the lower domain index), then power-of-two-choices within it. Both
    // candidates share that domain, so the flow and the flows it contends
    // with stay on one socket's caches. Sticky thereafter; placement
    // never affects output bytes.
    std::size_t best = domain_members_.size();
    std::size_t best_load = 0;
    for (std::size_t d = 0; d < domain_members_.size(); ++d) {
      const auto& members = domain_members_[d];
      if (members.empty()) continue;
      std::size_t load = 0;
      for (const std::uint32_t w : members) {
        load += options_.queue_depth - workers_[w]->free_slots.size();
      }
      if (best == domain_members_.size() ||
          load * domain_members_[best].size() <
              best_load * members.size()) {
        best = d;
        best_load = load;
      }
    }
    const auto& members = domain_members_[best];
    const auto ai =
        static_cast<std::size_t>(steer_rng_.next_below(members.size()));
    std::uint32_t a = members[ai];
    std::uint32_t b = a;
    if (members.size() > 1) {
      auto bi =
          static_cast<std::size_t>(steer_rng_.next_below(members.size() - 1));
      if (bi >= ai) ++bi;
      b = members[bi];
    }
    const std::size_t load_a =
        options_.queue_depth - workers_[a]->free_slots.size();
    const std::size_t load_b =
        options_.queue_depth - workers_[b]->free_slots.size();
    choice = load_a <= load_b ? a : b;
  } else {
    // Power of two choices on the current queue depths: sample two
    // distinct workers, keep the emptier one. Sticky thereafter, so
    // per-flow order is preserved; with the shared dictionary the
    // placement has no effect on output bytes, only on balance.
    // (topology_aware lands here too when the probe sees one domain.)
    const auto a = static_cast<std::uint32_t>(
        steer_rng_.next_below(options_.workers));
    auto b = static_cast<std::uint32_t>(
        steer_rng_.next_below(options_.workers - 1));
    if (b >= a) ++b;
    const std::size_t load_a =
        options_.queue_depth - workers_[a]->free_slots.size();
    const std::size_t load_b =
        options_.queue_depth - workers_[b]->free_slots.size();
    choice = load_a <= load_b ? a : b;
  }
  flow_worker_.emplace(flow, choice);
  return choice;
}

template <typename Stage>
void ParallelPipeline<Stage>::submit(std::uint32_t flow,
                                     typename Stage::Input input) {
  Worker& worker = *workers_[steer(flow)];
  while (worker.free_slots.empty()) {
    pump(/*may_block=*/true);
  }
  const std::uint32_t slot = worker.free_slots.back();
  worker.free_slots.pop_back();
  Job& job = worker.jobs[slot];
  job.seq = submitted_++;
  job.flow = flow;
  job.input = input;
  const bool pushed = worker.in.try_push(slot);
  ZL_ASSERT(pushed && "input ring sized to the slot pool");
  worker.doorbell.fetch_add(1, std::memory_order_release);
  worker.doorbell.notify_one();
  if (options_.work_stealing) {
    steal_doorbell_.fetch_add(1, std::memory_order_release);
    steal_doorbell_.notify_all();
  }
}

template <typename Stage>
void ParallelPipeline<Stage>::flush() {
  while (delivered_ < submitted_) {
    pump(/*may_block=*/true);
  }
  if (first_error_) {
    std::exception_ptr error = first_error_;
    first_error_ = nullptr;
    std::rethrow_exception(error);
  }
}

template <typename Stage>
const EngineStats* ParallelPipeline<Stage>::flow_stats(
    std::uint32_t flow) const {
  const auto wi = flow_worker_.find(flow);
  if (wi == flow_worker_.end()) return nullptr;
  const Worker& worker = *workers_[wi->second];
  const auto it = worker.engines.find(flow);
  return it == worker.engines.end() ? nullptr : &it->second.stats();
}

template <typename Stage>
EngineStats ParallelPipeline<Stage>::aggregate_stats() const {
  EngineStats total;
  const auto add = [&total](const EngineStats& s) {
    total.chunks += s.chunks;
    total.raw_packets += s.raw_packets;
    total.uncompressed_packets += s.uncompressed_packets;
    total.compressed_packets += s.compressed_packets;
    total.bytes_in += s.bytes_in;
    total.bytes_out += s.bytes_out;
    total.batches += s.batches;
  };
  for (const auto& worker : workers_) {
    if (worker->engine.has_value()) add(worker->engine->stats());
    for (const auto& [flow, engine] : worker->engines) add(engine.stats());
  }
  return total;
}

extern template class ParallelPipeline<EncodeStage>;
extern template class ParallelPipeline<DecodeStage>;

}  // namespace zipline::engine
