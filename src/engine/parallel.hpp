// Multi-core batch pipeline over the engine: stager -> workers -> sink.
//
// Batches are self-contained units of work, so horizontal scale falls out
// of handing whole EncodeBatch / DecodeBatch units to a fixed pool of
// worker threads. The caller thread is both the stager and the sink: it
// routes each submitted unit to a worker over that worker's SPSC input
// ring, and collects finished units from the workers' SPSC output rings —
// every ring has exactly one producer and one consumer, so the handoff is
// two relaxed counters and no locks.
//
// Flows, not packets, are the unit of parallelism: every flow is pinned to
// one worker (flow % workers) which owns a private Engine (dictionary,
// transform, stats) for it. Units of the same flow are therefore processed
// in submission order by one thread, which is what makes the parallel
// output byte-identical to running each flow through a single-threaded
// Engine — the dictionary replay the codec's determinism rests on is
// per-flow state, never shared.
//
// Ordered drain: with `ordered` set (the default) the sink callback
// observes units in global submission order, regardless of which worker
// finished first, via a bounded reorder window sized to the total number
// of in-flight units. The delivered byte stream is then identical to the
// single-threaded path run over the same submission sequence
// (tests/parallel_pipeline_test.cpp asserts it byte for byte).
//
// Memory discipline matches the engine core: job slots (with their batch
// arenas) are fixed at construction and recycled through the rings, so in
// steady state a submit/flush cycle performs zero heap allocations on any
// thread (tests/engine_alloc_test.cpp asserts it).
#pragma once

#include <atomic>
#include <cstdint>
#include <exception>
#include <functional>
#include <memory>
#include <span>
#include <thread>
#include <unordered_map>
#include <vector>

#include "common/contracts.hpp"
#include "engine/batch.hpp"
#include "engine/engine.hpp"

namespace zipline::engine {

struct ParallelOptions {
  /// Fixed worker-pool size. One worker with ordered drain degenerates to
  /// the single-threaded engine with a thread in the middle.
  std::size_t workers = 1;
  /// In-flight units per worker (ring depth / reorder window share).
  std::size_t queue_depth = 16;
  /// Dictionary shards per flow engine (gd/sharded_dictionary.hpp).
  std::size_t dictionary_shards = 1;
  gd::EvictionPolicy policy = gd::EvictionPolicy::lru;
  bool learn = true;
  /// Deliver units in global submission order (byte-identical to the
  /// serial path). Unordered delivery trades that for lower latency.
  bool ordered = true;
};

namespace detail {

/// Fixed-capacity single-producer single-consumer ring of job-slot
/// indices. Capacity rounds up to a power of two.
class SpscRing {
 public:
  explicit SpscRing(std::size_t capacity);

  bool try_push(std::uint32_t value) noexcept;
  bool try_pop(std::uint32_t& value) noexcept;

 private:
  std::vector<std::uint32_t> slots_;
  std::size_t mask_ = 0;
  alignas(64) std::atomic<std::size_t> head_{0};  // consumer cursor
  alignas(64) std::atomic<std::size_t> tail_{0};  // producer cursor
};

}  // namespace detail

/// Encode stage: payload bytes -> EncodeBatch. The payload memory must
/// stay valid until the unit is delivered to the sink.
struct EncodeStage {
  using Input = std::span<const std::uint8_t>;
  using Output = EncodeBatch;
  static void run(Engine& engine, const Input& in, Output& out) {
    out.clear();
    engine.encode_payload(in, out);
  }
};

/// Decode stage: encoded batch -> DecodeBatch. The input batch must stay
/// valid until the unit is delivered to the sink.
struct DecodeStage {
  using Input = const EncodeBatch*;
  using Output = DecodeBatch;
  static void run(Engine& engine, const Input& in, Output& out) {
    out.clear();
    engine.decode_batch(*in, out);
  }
};

template <typename Stage>
class ParallelPipeline {
 public:
  /// One finished unit of work, streamed to the sink. The output view is
  /// valid only for the duration of the sink call — the slot (and its
  /// arena) is recycled as soon as the sink returns.
  struct Unit {
    std::uint64_t seq = 0;    ///< global submission sequence number
    std::uint32_t flow = 0;
    const typename Stage::Output* output = nullptr;
  };
  using Sink = std::function<void(const Unit&)>;

  ParallelPipeline(const gd::GdParams& params, const ParallelOptions& options,
                   Sink sink);
  ~ParallelPipeline();

  ParallelPipeline(const ParallelPipeline&) = delete;
  ParallelPipeline& operator=(const ParallelPipeline&) = delete;

  /// Stages one unit for `flow`. Blocks (draining finished units into the
  /// sink) when the flow's worker has no free job slot.
  void submit(std::uint32_t flow, typename Stage::Input input);

  /// Blocks until every submitted unit has been delivered to the sink.
  /// If any unit's stage threw, rethrows the first such exception here on
  /// the caller thread (the failed unit is not delivered to the sink;
  /// later units still complete). Worker threads never terminate the
  /// process on a stage exception.
  void flush();

  [[nodiscard]] std::uint64_t submitted() const noexcept { return submitted_; }
  [[nodiscard]] std::uint64_t delivered() const noexcept { return delivered_; }
  [[nodiscard]] const ParallelOptions& options() const noexcept {
    return options_;
  }
  [[nodiscard]] const gd::GdParams& params() const noexcept { return params_; }

  /// Statistics of the engine serving `flow`, or nullptr if the flow never
  /// submitted. Only meaningful when the pipeline is quiescent (after
  /// flush() and before the next submit()).
  [[nodiscard]] const EngineStats* flow_stats(std::uint32_t flow) const;

 private:
  struct Job {
    std::uint64_t seq = 0;
    std::uint32_t flow = 0;
    typename Stage::Input input{};
    typename Stage::Output output;
    std::exception_ptr error;  ///< stage failure, ferried to the caller
  };

  struct Worker {
    explicit Worker(std::size_t queue_depth);
    std::vector<Job> jobs;            // fixed slot pool, arenas recycled
    detail::SpscRing in;              // stager -> worker (slot indices)
    detail::SpscRing out;             // worker -> sink (slot indices)
    std::vector<std::uint32_t> free_slots;  // caller-owned free stack
    alignas(64) std::atomic<std::uint64_t> doorbell{0};
    std::unordered_map<std::uint32_t, Engine> engines;  // worker-owned
    std::thread thread;
  };

  /// Entry of the ordered-drain reorder window, indexed by seq modulo the
  /// window size (which bounds the number of in-flight units, so slots
  /// never collide).
  struct Pending {
    std::uint32_t worker = 0;
    std::uint32_t slot = 0;
    bool valid = false;
  };

  void worker_loop(Worker& worker);
  [[nodiscard]] bool next_slot(Worker& worker, std::uint32_t& slot);
  void pump(bool may_block);
  void deliver(Worker& worker, std::uint32_t slot);

  gd::GdParams params_;
  ParallelOptions options_;
  Sink sink_;
  std::vector<std::unique_ptr<Worker>> workers_;
  std::atomic<bool> stop_{false};
  alignas(64) std::atomic<std::uint64_t> completions_{0};

  // Caller-thread state (stager + sink side).
  std::uint64_t submitted_ = 0;
  std::uint64_t delivered_ = 0;
  std::uint64_t next_expected_ = 0;
  std::vector<Pending> pending_;
  std::exception_ptr first_error_;
};

using ParallelEncoder = ParallelPipeline<EncodeStage>;
using ParallelDecoder = ParallelPipeline<DecodeStage>;

// --- member definitions ----------------------------------------------------
// In the header so consumers can instantiate the pipeline over their own
// stages (gd/stream.cpp decodes whole containers this way); the common
// encode/decode stages are compiled once in parallel.cpp.

template <typename Stage>
ParallelPipeline<Stage>::Worker::Worker(std::size_t queue_depth)
    : jobs(queue_depth), in(queue_depth), out(queue_depth) {
  free_slots.reserve(queue_depth);
  for (std::size_t slot = queue_depth; slot-- > 0;) {
    free_slots.push_back(static_cast<std::uint32_t>(slot));
  }
}

template <typename Stage>
ParallelPipeline<Stage>::ParallelPipeline(const gd::GdParams& params,
                                          const ParallelOptions& options,
                                          Sink sink)
    : params_(params), options_(options), sink_(std::move(sink)) {
  ZL_EXPECTS(options_.workers >= 1);
  ZL_EXPECTS(options_.queue_depth >= 1);
  workers_.reserve(options_.workers);
  for (std::size_t i = 0; i < options_.workers; ++i) {
    workers_.push_back(std::make_unique<Worker>(options_.queue_depth));
  }
  pending_.resize(options_.workers * options_.queue_depth);
  for (auto& worker : workers_) {
    Worker* w = worker.get();
    w->thread = std::thread([this, w] { worker_loop(*w); });
  }
}

template <typename Stage>
ParallelPipeline<Stage>::~ParallelPipeline() {
  try {
    flush();
  } catch (...) {
    // Teardown without a prior flush(): the error already missed its
    // delivery point; dropping it beats terminating.
  }
  stop_.store(true, std::memory_order_release);
  for (auto& worker : workers_) {
    worker->doorbell.fetch_add(1, std::memory_order_release);
    worker->doorbell.notify_one();
  }
  for (auto& worker : workers_) {
    if (worker->thread.joinable()) worker->thread.join();
  }
}

template <typename Stage>
bool ParallelPipeline<Stage>::next_slot(Worker& worker, std::uint32_t& slot) {
  for (;;) {
    if (worker.in.try_pop(slot)) return true;
    // Snapshot the doorbell before the re-check: a push (or stop) that
    // lands after the snapshot changes the value, so the wait below cannot
    // sleep through it.
    const std::uint64_t seen = worker.doorbell.load(std::memory_order_acquire);
    if (worker.in.try_pop(slot)) return true;
    if (stop_.load(std::memory_order_acquire)) return false;
    worker.doorbell.wait(seen, std::memory_order_acquire);
  }
}

template <typename Stage>
void ParallelPipeline<Stage>::worker_loop(Worker& worker) {
  std::uint32_t slot = 0;
  while (next_slot(worker, slot)) {
    Job& job = worker.jobs[slot];
    job.error = nullptr;
    try {
      // One private engine per flow: created on the flow's first unit
      // (warmup), found allocation-free afterwards.
      const auto [it, inserted] = worker.engines.try_emplace(
          job.flow, params_, options_.policy, options_.learn,
          options_.dictionary_shards);
      Stage::run(it->second, job.input, job.output);
    } catch (...) {
      // Never let a stage failure (e.g. a contract violation on hostile
      // input) escape the thread and terminate the process; flush()
      // rethrows it on the caller thread instead.
      job.error = std::current_exception();
    }
    const bool pushed = worker.out.try_push(slot);
    ZL_ASSERT(pushed && "output ring sized to the slot pool");
    completions_.fetch_add(1, std::memory_order_release);
    completions_.notify_one();
  }
}

template <typename Stage>
void ParallelPipeline<Stage>::deliver(Worker& worker, std::uint32_t slot) {
  Job& job = worker.jobs[slot];
  // Account the unit and recycle the slot BEFORE the sink runs: a throwing
  // sink then propagates to the caller with the pipeline still consistent
  // (no leaked slot, no flush()/destructor hang). The job's output stays
  // intact through the sink call — free_slots is only consumed by
  // submit(), on this same thread.
  worker.free_slots.push_back(slot);
  ++delivered_;
  if (job.error) {
    if (!first_error_) first_error_ = job.error;
    job.error = nullptr;
  } else if (sink_) {
    sink_(Unit{job.seq, job.flow, &job.output});
  }
}

template <typename Stage>
void ParallelPipeline<Stage>::pump(bool may_block) {
  // Snapshot before scanning: a completion that lands mid-scan bumps the
  // counter past the snapshot, so a blocking wait returns immediately.
  const std::uint64_t seen = completions_.load(std::memory_order_acquire);
  bool progressed = false;
  for (std::size_t wi = 0; wi < workers_.size(); ++wi) {
    Worker& worker = *workers_[wi];
    std::uint32_t slot = 0;
    while (worker.out.try_pop(slot)) {
      progressed = true;
      if (options_.ordered) {
        Pending& entry = pending_[worker.jobs[slot].seq % pending_.size()];
        ZL_ASSERT(!entry.valid && "reorder window sized to in-flight units");
        entry = {static_cast<std::uint32_t>(wi), slot, true};
      } else {
        deliver(worker, slot);
      }
    }
  }
  if (options_.ordered) {
    for (;;) {
      Pending& entry = pending_[next_expected_ % pending_.size()];
      if (!entry.valid) break;
      entry.valid = false;
      Worker& worker = *workers_[entry.worker];
      ZL_ASSERT(worker.jobs[entry.slot].seq == next_expected_);
      ++next_expected_;
      deliver(worker, entry.slot);
    }
  }
  if (!progressed && may_block && delivered_ < submitted_) {
    completions_.wait(seen, std::memory_order_acquire);
  }
}

template <typename Stage>
void ParallelPipeline<Stage>::submit(std::uint32_t flow,
                                     typename Stage::Input input) {
  Worker& worker = *workers_[flow % workers_.size()];
  while (worker.free_slots.empty()) {
    pump(/*may_block=*/true);
  }
  const std::uint32_t slot = worker.free_slots.back();
  worker.free_slots.pop_back();
  Job& job = worker.jobs[slot];
  job.seq = submitted_++;
  job.flow = flow;
  job.input = input;
  const bool pushed = worker.in.try_push(slot);
  ZL_ASSERT(pushed && "input ring sized to the slot pool");
  worker.doorbell.fetch_add(1, std::memory_order_release);
  worker.doorbell.notify_one();
}

template <typename Stage>
void ParallelPipeline<Stage>::flush() {
  while (delivered_ < submitted_) {
    pump(/*may_block=*/true);
  }
  if (first_error_) {
    std::exception_ptr error = first_error_;
    first_error_ = nullptr;
    std::rethrow_exception(error);
  }
}

template <typename Stage>
const EngineStats* ParallelPipeline<Stage>::flow_stats(
    std::uint32_t flow) const {
  const Worker& worker = *workers_[flow % workers_.size()];
  const auto it = worker.engines.find(flow);
  return it == worker.engines.end() ? nullptr : &it->second.stats();
}

extern template class ParallelPipeline<EncodeStage>;
extern template class ParallelPipeline<DecodeStage>;

}  // namespace zipline::engine
