// Reusable batch arenas for the ZipLine engine.
//
// A batch is a flat byte arena plus a descriptor array: no per-packet heap
// objects, no vector-of-vectors. clear() drops the contents but keeps the
// capacity, so a batch reused across calls stops touching the allocator
// once it has grown to the working-set size — the property the engine's
// line-rate claim rests on (see engine/README.md).
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "common/bitvector.hpp"
#include "gd/packet.hpp"

namespace zipline::engine {

/// One encoded packet inside an EncodeBatch: wire payload bytes live at
/// [offset, offset + size) of the batch arena.
struct PacketDesc {
  gd::PacketType type = gd::PacketType::raw;
  std::uint32_t offset = 0;
  std::uint32_t size = 0;
  std::uint32_t syndrome = 0;   ///< types 2/3
  std::uint32_t basis_id = 0;   ///< type 3 only
};

/// Encoded packets, flat. Also usable as a staging area for raw chunk
/// frames (descriptors with type raw) fed to the switch model or a host.
class EncodeBatch {
 public:
  /// Drops all packets, keeping the arena capacity.
  void clear() noexcept {
    storage_.clear();
    packets_.clear();
  }

  void reserve(std::size_t packet_count, std::size_t storage_bytes) {
    packets_.reserve(packet_count);
    storage_.reserve(storage_bytes);
  }

  [[nodiscard]] bool empty() const noexcept { return packets_.empty(); }
  [[nodiscard]] std::size_t size() const noexcept { return packets_.size(); }
  [[nodiscard]] std::size_t storage_bytes() const noexcept {
    return storage_.size();
  }

  [[nodiscard]] std::span<const PacketDesc> packets() const noexcept {
    return packets_;
  }
  [[nodiscard]] const PacketDesc& packet(std::size_t i) const {
    return packets_[i];
  }
  [[nodiscard]] std::span<const std::uint8_t> storage() const noexcept {
    return storage_;
  }
  [[nodiscard]] std::span<const std::uint8_t> payload(
      const PacketDesc& desc) const {
    return std::span(storage_).subspan(desc.offset, desc.size);
  }
  [[nodiscard]] std::span<const std::uint8_t> payload(std::size_t i) const {
    return payload(packets_[i]);
  }

  /// Appends one packet whose serialized wire payload is `bytes`.
  void append(gd::PacketType type, std::uint32_t syndrome,
              std::uint32_t basis_id, std::span<const std::uint8_t> bytes);

 private:
  std::vector<std::uint8_t> storage_;
  std::vector<PacketDesc> packets_;
};

/// One decoded chunk inside a DecodeBatch.
struct ChunkDesc {
  gd::PacketType from_type = gd::PacketType::raw;  ///< wire type it came from
  std::uint32_t offset = 0;
  std::uint32_t size = 0;
};

/// Decoded output, flat. Chunks land in arrival order, so bytes() IS the
/// reassembled payload when the stream carries chunks followed by a raw
/// tail (the encoder's framing).
class DecodeBatch {
 public:
  void clear() noexcept {
    bytes_.clear();
    chunks_.clear();
  }

  void reserve(std::size_t chunk_count, std::size_t byte_count) {
    chunks_.reserve(chunk_count);
    bytes_.reserve(byte_count);
  }

  [[nodiscard]] bool empty() const noexcept { return chunks_.empty(); }
  [[nodiscard]] std::size_t size() const noexcept { return chunks_.size(); }
  [[nodiscard]] std::span<const std::uint8_t> bytes() const noexcept {
    return bytes_;
  }
  [[nodiscard]] std::span<const ChunkDesc> chunks() const noexcept {
    return chunks_;
  }
  [[nodiscard]] std::span<const std::uint8_t> chunk(std::size_t i) const {
    const ChunkDesc& d = chunks_[i];
    return std::span(bytes_).subspan(d.offset, d.size);
  }

  /// Copies the reassembled payload out (prefer reading bytes() directly).
  [[nodiscard]] std::vector<std::uint8_t> to_vector() const {
    return bytes_;
  }

  /// Moves the reassembled payload out, leaving the batch empty (the
  /// zero-copy hand-off for callers that own the batch).
  [[nodiscard]] std::vector<std::uint8_t> release_bytes() {
    std::vector<std::uint8_t> out = std::move(bytes_);
    clear();
    return out;
  }

  /// Appends a decoded chunk's bits (MSB-first byte serialization).
  void append_chunk(gd::PacketType from_type, const bits::BitVector& chunk);

  /// Appends pass-through raw bytes (type-1 packets / tails).
  void append_raw(std::span<const std::uint8_t> bytes);

 private:
  std::vector<std::uint8_t> bytes_;
  std::vector<ChunkDesc> chunks_;
};

}  // namespace zipline::engine
