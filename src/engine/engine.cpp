#include "engine/engine.hpp"

#include "common/contracts.hpp"

namespace zipline::engine {

Engine::Engine(const gd::GdParams& params, gd::EvictionPolicy policy,
               bool learn, std::size_t dictionary_shards)
    : transform_(params),
      dictionary_(params.dictionary_capacity(), policy, dictionary_shards),
      learn_(learn) {}

gd::PacketType Engine::encode_step(const bits::BitVector& chunk) {
  ZL_EXPECTS(chunk.size() == params().chunk_bits);
  ++stats_.chunks;
  stats_.bytes_in += params().raw_payload_bytes();
  transform_.forward_into(chunk, scratch_, word_scratch_);
  if (const auto id = dictionary_.lookup(scratch_.basis)) {
    scratch_id_ = *id;
    ++stats_.compressed_packets;
    stats_.bytes_out += params().type3_payload_bytes();
    return gd::PacketType::compressed;
  }
  if (learn_) {
    dictionary_.insert(scratch_.basis);
  }
  ++stats_.uncompressed_packets;
  stats_.bytes_out += params().type2_payload_bytes();
  return gd::PacketType::uncompressed;
}

void Engine::encode_chunk(const bits::BitVector& chunk, EncodeBatch& out) {
  const gd::GdParams& p = params();
  const gd::PacketType type = encode_step(chunk);
  // Field order mirrors GdPacket::serialize exactly, so the batch path and
  // the per-chunk adapter stay byte-identical.
  writer_.reset();
  writer_.write_uint(scratch_.syndrome, static_cast<std::size_t>(p.m));
  writer_.write_bits(scratch_.excess);
  if (type == gd::PacketType::uncompressed) {
    writer_.write_bits(scratch_.basis);
    writer_.align_to_byte();
    if (p.model_tofino_padding) {
      writer_.write_padding(p.type2_extra_pad_bits);
      writer_.align_to_byte();
    }
    out.append(type, scratch_.syndrome, 0, writer_.bytes());
  } else {
    writer_.write_uint(scratch_id_, p.id_bits);
    writer_.align_to_byte();
    out.append(type, scratch_.syndrome, scratch_id_, writer_.bytes());
  }
}

void Engine::encode_payload(std::span<const std::uint8_t> payload,
                            EncodeBatch& out) {
  // Wire framing of raw chunks is byte-based; require byte-sized chunks.
  ZL_EXPECTS(params().chunk_bits % 8 == 0);
  const std::size_t chunk_bytes = params().chunk_bits / 8;
  const std::size_t full = payload.size() / chunk_bytes;
  for (std::size_t i = 0; i < full; ++i) {
    chunk_scratch_.assign_from_bytes(
        payload.subspan(i * chunk_bytes, chunk_bytes), params().chunk_bits);
    encode_chunk(chunk_scratch_, out);
  }
  const auto tail = payload.subspan(full * chunk_bytes);
  if (!tail.empty()) {
    note_raw_tail(tail.size());
    out.append(gd::PacketType::raw, 0, 0, tail);
  }
  ++stats_.batches;
}

gd::GdPacket Engine::encode_chunk_packet(const bits::BitVector& chunk) {
  const gd::PacketType type = encode_step(chunk);
  // Copy (not move) out of the scratch so its capacity survives the call.
  if (type == gd::PacketType::compressed) {
    return gd::GdPacket::make_compressed(scratch_.syndrome, scratch_.excess,
                                         scratch_id_);
  }
  return gd::GdPacket::make_uncompressed(scratch_.syndrome, scratch_.excess,
                                         scratch_.basis);
}

void Engine::decode_step(gd::PacketType type, std::uint32_t syndrome) {
  const gd::GdParams& p = params();
  if (type == gd::PacketType::uncompressed) {
    ++stats_.uncompressed_packets;
    stats_.bytes_in += p.type2_payload_bytes();
    if (learn_ && !dictionary_.peek(scratch_.basis)) {
      dictionary_.insert(scratch_.basis);
    }
    stats_.bytes_out += p.raw_payload_bytes();
    transform_.inverse_into(scratch_.excess, scratch_.basis, syndrome,
                            chunk_scratch_, word_scratch_);
  } else {
    ++stats_.compressed_packets;
    stats_.bytes_in += p.type3_payload_bytes();
    const bits::BitVector* basis = dictionary_.lookup_basis_ref(scratch_id_);
    ZL_EXPECTS(basis != nullptr && "compressed packet with unknown ID");
    stats_.bytes_out += p.raw_payload_bytes();
    transform_.inverse_into(scratch_.excess, *basis, syndrome, chunk_scratch_,
                            word_scratch_);
  }
}

void Engine::decode_wire(gd::PacketType type,
                         std::span<const std::uint8_t> payload,
                         DecodeBatch& out) {
  ++stats_.chunks;
  if (type == gd::PacketType::raw) {
    ++stats_.raw_packets;
    stats_.bytes_in += payload.size();
    stats_.bytes_out += payload.size();
    out.append_raw(payload);
    return;
  }
  const gd::GdParams& p = params();
  const std::size_t body = type == gd::PacketType::uncompressed
                               ? p.type2_payload_bytes()
                               : p.type3_payload_bytes();
  ZL_EXPECTS(payload.size() >= body);
  bits::BitReader reader(payload.first(body));
  const auto syndrome =
      static_cast<std::uint32_t>(reader.read_uint(static_cast<std::size_t>(p.m)));
  reader.read_bits_into(p.excess_bits(), scratch_.excess);
  if (type == gd::PacketType::uncompressed) {
    reader.read_bits_into(p.k(), scratch_.basis);
  } else {
    scratch_id_ = static_cast<std::uint32_t>(reader.read_uint(p.id_bits));
  }
  decode_step(type, syndrome);
  out.append_chunk(type, chunk_scratch_);
}

void Engine::decode_batch(const EncodeBatch& in, DecodeBatch& out) {
  for (const PacketDesc& desc : in.packets()) {
    decode_wire(desc.type, in.payload(desc), out);
  }
  ++stats_.batches;
}

bits::BitVector Engine::decode_packet(const gd::GdPacket& packet) {
  ++stats_.chunks;
  if (packet.type == gd::PacketType::raw) {
    ++stats_.raw_packets;
    stats_.bytes_in += packet.raw.size();
    stats_.bytes_out += packet.raw.size();
    return bits::BitVector::from_bytes(packet.raw, packet.raw.size() * 8);
  }
  // Stage the packet fields in the scratch and run the shared transition,
  // so this adapter path cannot drift from the batch path.
  scratch_.excess = packet.excess;
  if (packet.type == gd::PacketType::uncompressed) {
    scratch_.basis = packet.basis;
  } else {
    scratch_id_ = packet.basis_id;
  }
  decode_step(packet.type, packet.syndrome);
  return chunk_scratch_;
}

void Engine::note_raw_passthrough(std::size_t bytes) {
  ++stats_.chunks;
  note_raw_tail(bytes);
}

void Engine::note_raw_tail(std::size_t bytes) {
  ++stats_.raw_packets;
  stats_.bytes_in += bytes;
  stats_.bytes_out += bytes;
}

void Engine::preload(const bits::BitVector& basis) {
  ZL_EXPECTS(basis.size() == params().k());
  if (!dictionary_.peek(basis)) {
    dictionary_.insert(basis);
  }
}

}  // namespace zipline::engine
