#include "engine/engine.hpp"

#include "common/contracts.hpp"

namespace zipline::engine {

Engine::Engine(const gd::GdParams& params, gd::EvictionPolicy policy,
               bool learn, std::size_t dictionary_shards)
    : transform_(params),
      dictionary_(params.dictionary_capacity(), policy, dictionary_shards),
      learn_(learn) {}

Engine::Engine(const gd::GdParams& params,
               gd::ConcurrentShardedDictionary& dictionary, bool learn)
    : transform_(params), dictionary_(dictionary), learn_(learn) {
  ZL_EXPECTS(dictionary.capacity() == params.dictionary_capacity() &&
             "shared dictionary must be sized for the engine's id space");
}

gd::PacketType Engine::classify(const gd::TransformedChunk& transformed,
                                std::uint32_t& id) {
  ++stats_.chunks;
  stats_.bytes_in += params().raw_payload_bytes();
  // lookup_or_insert keeps miss-then-learn atomic on a shared dictionary
  // (one stripe acquisition), so concurrent learners of one fresh basis
  // cannot double-insert; privately it is the plain serial sequence.
  if (const auto hit = dictionary_.lookup_or_insert(transformed.basis,
                                                    learn_)) {
    id = *hit;
    ++stats_.compressed_packets;
    stats_.bytes_out += params().type3_payload_bytes();
    return gd::PacketType::compressed;
  }
  ++stats_.uncompressed_packets;
  stats_.bytes_out += params().type2_payload_bytes();
  return gd::PacketType::uncompressed;
}

gd::PacketType Engine::encode_step(const bits::BitVector& chunk) {
  ZL_EXPECTS(chunk.size() == params().chunk_bits);
  transform_.forward_into(chunk, scratch_, word_scratch_);
  return classify(scratch_, scratch_id_);
}

void Engine::emit_chunk(const gd::TransformedChunk& transformed,
                        gd::PacketType type, std::uint32_t id,
                        EncodeBatch& out) {
  const gd::GdParams& p = params();
  // Field order mirrors GdPacket::serialize exactly, so the batch path and
  // the per-chunk adapter stay byte-identical.
  writer_.reset();
  writer_.write_uint(transformed.syndrome, static_cast<std::size_t>(p.m));
  writer_.write_bits(transformed.excess);
  if (type == gd::PacketType::uncompressed) {
    writer_.write_bits(transformed.basis);
    writer_.align_to_byte();
    if (p.model_tofino_padding) {
      writer_.write_padding(p.type2_extra_pad_bits);
      writer_.align_to_byte();
    }
    out.append(type, transformed.syndrome, 0, writer_.bytes());
  } else {
    writer_.write_uint(id, p.id_bits);
    writer_.align_to_byte();
    out.append(type, transformed.syndrome, id, writer_.bytes());
  }
}

void Engine::encode_chunk(const bits::BitVector& chunk, EncodeBatch& out) {
  const gd::PacketType type = encode_step(chunk);
  emit_chunk(scratch_, type, scratch_id_, out);
}

void Engine::encode_payload(std::span<const std::uint8_t> payload,
                            EncodeBatch& out) {
  // Wire framing of raw chunks is byte-based; require byte-sized chunks.
  ZL_EXPECTS(params().chunk_bits % 8 == 0);
  const std::size_t chunk_bytes = params().chunk_bits / 8;
  const std::size_t full = payload.size() / chunk_bytes;
  for (std::size_t i = 0; i < full; ++i) {
    chunk_scratch_.assign_from_bytes(
        payload.subspan(i * chunk_bytes, chunk_bytes), params().chunk_bits);
    encode_chunk(chunk_scratch_, out);
  }
  const auto tail = payload.subspan(full * chunk_bytes);
  if (!tail.empty()) {
    note_raw_tail(tail.size());
    out.append(gd::PacketType::raw, 0, 0, tail);
  }
  ++stats_.batches;
}

void Engine::encode_transform(std::span<const std::uint8_t> payload,
                              EncodeUnit& unit) {
  ZL_EXPECTS(params().chunk_bits % 8 == 0);
  const std::size_t chunk_bytes = params().chunk_bits / 8;
  const std::size_t full = payload.size() / chunk_bytes;
  if (unit.transformed.size() < full) {
    // Grow-only: shrinking would discard the BitVector capacities that
    // make steady-state units allocation-free.
    unit.transformed.resize(full);
    unit.types.resize(full);
    unit.ids.resize(full);
    unit.hashes.resize(full);
  }
  // Transform fast path: the whole unit canonicalizes as one kernel batch
  // over the block scratch's word-plane (multi-stream syndrome fold +
  // block slice) — byte-identical to forward_into per chunk, without the
  // per-chunk BitVector call chain.
  transform_.forward_block(payload, full,
                           std::span(unit.transformed.data(), full),
                           block_scratch_);
  if (dictionary_.is_shared()) {
    for (std::size_t i = 0; i < full; ++i) {
      // Hash in the (concurrent) transform phase so the sequenced resolve
      // phase spends none of its critical section hashing.
      unit.hashes[i] = unit.transformed[i].basis.hash();
    }
  }
  unit.chunks = full;
  unit.tail = payload.subspan(full * chunk_bytes);
}

void Engine::encode_resolve(EncodeUnit& unit) {
  if (!dictionary_.is_shared()) {
    // Private dictionary: per-chunk classify, whose lazy single-shard
    // path lets the prefilter resolve most misses without hashing. The
    // probe stage ahead of it prefetches every chunk's prefilter slot so
    // the classify loop stops eating the cold misses serially.
    for (std::size_t i = 0; i < unit.chunks; ++i) {
      dictionary_.prefetch(unit.transformed[i].basis);
    }
    for (std::size_t i = 0; i < unit.chunks; ++i) {
      unit.types[i] = classify(unit.transformed[i], unit.ids[i]);
    }
    return;
  }
  // Shared dictionary: plan + per-shard apply + finish. The one-call form
  // simply runs every shard's group back to back; the parallel pipeline
  // interleaves other units' groups between them (per-shard turnstiles),
  // which is observationally identical because per-shard state is
  // independent.
  encode_resolve_plan(unit);
  for (std::size_t s = 0; s < dictionary_.shard_count(); ++s) {
    resolve_shard(s);
  }
  encode_resolve_finish(unit);
}

void Engine::encode_resolve_plan(EncodeUnit& unit) {
  ZL_EXPECTS(dictionary_.is_shared());
  // The plan replays the exact op sequence classify would issue — one
  // lookup_or_insert (or bare lookup when not learning) per chunk, in
  // chunk order — so types, identifiers and statistics are identical.
  batch_ops_.resize(unit.chunks);
  const gd::BatchOp::Kind kind = learn_ ? gd::BatchOp::Kind::lookup_or_insert
                                        : gd::BatchOp::Kind::lookup;
  for (std::size_t i = 0; i < unit.chunks; ++i) {
    gd::BatchOp& op = batch_ops_[i];
    op.kind = kind;
    op.hash = unit.hashes[i];
    op.basis = &unit.transformed[i].basis;
    op.out = nullptr;
    op.result = gd::BatchOp::kNoId;
  }
  dictionary_.group_batch(batch_ops_, batch_scratch_);
  // Probe stage: prefetch every op's shard-index and seqlock read-mirror
  // slots (hashes were computed in the concurrent transform phase) so the
  // sequenced resolve loop doesn't pay the cold-miss latency serially.
  dictionary_.prefetch_ops(batch_ops_);
}

void Engine::resolve_shard(std::size_t shard) {
  dictionary_.apply_shard_group(batch_ops_, batch_scratch_, shard);
}

void Engine::encode_resolve_finish(EncodeUnit& unit) {
  const gd::GdParams& p = params();
  for (std::size_t i = 0; i < unit.chunks; ++i) {
    ++stats_.chunks;
    stats_.bytes_in += p.raw_payload_bytes();
    if (batch_ops_[i].result != gd::BatchOp::kNoId) {
      unit.ids[i] = batch_ops_[i].result;
      unit.types[i] = gd::PacketType::compressed;
      ++stats_.compressed_packets;
      stats_.bytes_out += p.type3_payload_bytes();
    } else {
      unit.types[i] = gd::PacketType::uncompressed;
      ++stats_.uncompressed_packets;
      stats_.bytes_out += p.type2_payload_bytes();
    }
  }
}

void Engine::encode_emit(const EncodeUnit& unit, EncodeBatch& out) {
  for (std::size_t i = 0; i < unit.chunks; ++i) {
    emit_chunk(unit.transformed[i], unit.types[i], unit.ids[i], out);
  }
  if (!unit.tail.empty()) {
    note_raw_tail(unit.tail.size());
    out.append(gd::PacketType::raw, 0, 0, unit.tail);
  }
  ++stats_.batches;
}

gd::GdPacket Engine::encode_chunk_packet(const bits::BitVector& chunk) {
  const gd::PacketType type = encode_step(chunk);
  // Copy (not move) out of the scratch so its capacity survives the call.
  if (type == gd::PacketType::compressed) {
    return gd::GdPacket::make_compressed(scratch_.syndrome, scratch_.excess,
                                         scratch_id_);
  }
  return gd::GdPacket::make_uncompressed(scratch_.syndrome, scratch_.excess,
                                         scratch_.basis);
}

void Engine::decode_step(gd::PacketType type, std::uint32_t syndrome) {
  const gd::GdParams& p = params();
  if (type == gd::PacketType::uncompressed) {
    ++stats_.uncompressed_packets;
    stats_.bytes_in += p.type2_payload_bytes();
    if (learn_) {
      dictionary_.insert_if_absent(scratch_.basis);
    }
    stats_.bytes_out += p.raw_payload_bytes();
    transform_.inverse_into(scratch_.excess, scratch_.basis, syndrome,
                            chunk_scratch_, word_scratch_);
  } else {
    ++stats_.compressed_packets;
    stats_.bytes_in += p.type3_payload_bytes();
    stats_.bytes_out += p.raw_payload_bytes();
    if (dictionary_.is_shared()) {
      // A reference into a shared dictionary dies with the shard lock;
      // copy the basis out instead (reusing the scratch's storage).
      const bool mapped =
          dictionary_.lookup_basis_into(scratch_id_, basis_scratch_);
      ZL_EXPECTS(mapped && "compressed packet with unknown ID");
      transform_.inverse_into(scratch_.excess, basis_scratch_, syndrome,
                              chunk_scratch_, word_scratch_);
    } else {
      const bits::BitVector* basis = dictionary_.lookup_basis_ref(scratch_id_);
      ZL_EXPECTS(basis != nullptr && "compressed packet with unknown ID");
      transform_.inverse_into(scratch_.excess, *basis, syndrome,
                              chunk_scratch_, word_scratch_);
    }
  }
}

void Engine::decode_wire(gd::PacketType type,
                         std::span<const std::uint8_t> payload,
                         DecodeBatch& out) {
  ++stats_.chunks;
  if (type == gd::PacketType::raw) {
    ++stats_.raw_packets;
    stats_.bytes_in += payload.size();
    stats_.bytes_out += payload.size();
    out.append_raw(payload);
    return;
  }
  const gd::GdParams& p = params();
  const std::size_t body = type == gd::PacketType::uncompressed
                               ? p.type2_payload_bytes()
                               : p.type3_payload_bytes();
  ZL_EXPECTS(payload.size() >= body);
  bits::BitReader reader(payload.first(body));
  const auto syndrome =
      static_cast<std::uint32_t>(reader.read_uint(static_cast<std::size_t>(p.m)));
  reader.read_bits_into(p.excess_bits(), scratch_.excess);
  if (type == gd::PacketType::uncompressed) {
    reader.read_bits_into(p.k(), scratch_.basis);
  } else {
    scratch_id_ = static_cast<std::uint32_t>(reader.read_uint(p.id_bits));
  }
  decode_step(type, syndrome);
  out.append_chunk(type, chunk_scratch_);
}

void Engine::decode_batch(const EncodeBatch& in, DecodeBatch& out) {
  for (const PacketDesc& desc : in.packets()) {
    decode_wire(desc.type, in.payload(desc), out);
  }
  ++stats_.batches;
}

void Engine::decode_parse(const EncodeBatch& in, DecodeUnit& unit) {
  const gd::GdParams& p = params();
  const std::size_t count = in.size();
  if (unit.types.size() < count) {
    unit.types.resize(count);
    unit.syndromes.resize(count);
    unit.ids.resize(count);
    unit.excesses.resize(count);
    unit.bases.resize(count);
    unit.hashes.resize(count);
    unit.raws.resize(count);
  }
  const bool shared = dictionary_.is_shared();
  for (std::size_t i = 0; i < count; ++i) {
    const PacketDesc& desc = in.packet(i);
    const auto payload = in.payload(desc);
    unit.types[i] = desc.type;
    if (desc.type == gd::PacketType::raw) {
      unit.raws[i] = payload;
      continue;
    }
    const std::size_t body = desc.type == gd::PacketType::uncompressed
                                 ? p.type2_payload_bytes()
                                 : p.type3_payload_bytes();
    ZL_EXPECTS(payload.size() >= body);
    bits::BitReader reader(payload.first(body));
    unit.syndromes[i] = static_cast<std::uint32_t>(
        reader.read_uint(static_cast<std::size_t>(p.m)));
    reader.read_bits_into(p.excess_bits(), unit.excesses[i]);
    if (desc.type == gd::PacketType::uncompressed) {
      reader.read_bits_into(p.k(), unit.bases[i]);
      if (shared && learn_) {
        // Hash the learnable basis in the (concurrent) parse phase; the
        // sequenced resolve phase reuses it — see encode_transform.
        unit.hashes[i] = unit.bases[i].hash();
      }
    } else {
      unit.ids[i] =
          static_cast<std::uint32_t>(reader.read_uint(p.id_bits));
    }
  }
  unit.packets = count;
}

void Engine::decode_resolve(DecodeUnit& unit) {
  const gd::GdParams& p = params();
  if (dictionary_.is_shared()) {
    // Shared dictionary: plan + per-shard apply + finish (see
    // encode_resolve).
    decode_resolve_plan(unit);
    for (std::size_t s = 0; s < dictionary_.shard_count(); ++s) {
      resolve_shard(s);
    }
    decode_resolve_finish(unit);
    return;
  }
  for (std::size_t i = 0; i < unit.packets; ++i) {
    ++stats_.chunks;
    switch (unit.types[i]) {
      case gd::PacketType::raw:
        ++stats_.raw_packets;
        stats_.bytes_in += unit.raws[i].size();
        stats_.bytes_out += unit.raws[i].size();
        break;
      case gd::PacketType::uncompressed:
        ++stats_.uncompressed_packets;
        stats_.bytes_in += p.type2_payload_bytes();
        stats_.bytes_out += p.raw_payload_bytes();
        if (learn_) {
          dictionary_.insert_if_absent(unit.bases[i]);
        }
        break;
      default: {
        ++stats_.compressed_packets;
        stats_.bytes_in += p.type3_payload_bytes();
        stats_.bytes_out += p.raw_payload_bytes();
        const bool mapped =
            dictionary_.lookup_basis_into(unit.ids[i], unit.bases[i]);
        ZL_EXPECTS(mapped && "compressed packet with unknown ID");
        break;
      }
    }
  }
}

void Engine::decode_resolve_plan(DecodeUnit& unit) {
  ZL_EXPECTS(dictionary_.is_shared());
  // Gather the unit's dictionary operations — type-2 learns and type-3
  // fetches, in packet order — into one plan executed with a single
  // stripe acquisition per (unit, shard) pair. A type-3 identifier can
  // reference a basis a type-2 packet of this same unit teaches; both
  // route to the same shard (the identifier lives in the shard the
  // basis hashes to), and in-shard plan order is preserved, so the
  // fetch still observes the insert exactly as the serial loop would.
  batch_ops_.clear();
  for (std::size_t i = 0; i < unit.packets; ++i) {
    if (unit.types[i] == gd::PacketType::uncompressed && learn_) {
      batch_ops_.push_back({gd::BatchOp::Kind::insert_if_absent, 0,
                            unit.hashes[i], &unit.bases[i], nullptr,
                            gd::BatchOp::kNoId});
    } else if (unit.types[i] == gd::PacketType::compressed) {
      batch_ops_.push_back({gd::BatchOp::Kind::fetch_basis, unit.ids[i], 0,
                            nullptr, &unit.bases[i], gd::BatchOp::kNoId});
    }
  }
  dictionary_.group_batch(batch_ops_, batch_scratch_);
  // Same probe stage as encode_resolve_plan: warm the index and mirror
  // slots for the whole unit before the sequenced per-shard applies.
  dictionary_.prefetch_ops(batch_ops_);
}

void Engine::decode_resolve_finish(DecodeUnit& unit) {
  const gd::GdParams& p = params();
  std::size_t op = 0;
  for (std::size_t i = 0; i < unit.packets; ++i) {
    ++stats_.chunks;
    switch (unit.types[i]) {
      case gd::PacketType::raw:
        ++stats_.raw_packets;
        stats_.bytes_in += unit.raws[i].size();
        stats_.bytes_out += unit.raws[i].size();
        break;
      case gd::PacketType::uncompressed:
        ++stats_.uncompressed_packets;
        stats_.bytes_in += p.type2_payload_bytes();
        stats_.bytes_out += p.raw_payload_bytes();
        if (learn_) ++op;
        break;
      default:
        ++stats_.compressed_packets;
        stats_.bytes_in += p.type3_payload_bytes();
        stats_.bytes_out += p.raw_payload_bytes();
        ZL_EXPECTS(batch_ops_[op].result != gd::BatchOp::kNoId &&
                   "compressed packet with unknown ID");
        ++op;
        break;
    }
  }
}

void Engine::decode_emit(const DecodeUnit& unit, DecodeBatch& out) {
  // Transform fast path, inverse direction: stage every non-raw packet's
  // (basis, syndrome) into the block scratch, expand them all as one
  // kernel batch, then emit in packet order composing each chunk from its
  // expanded word row plus the verbatim excess. Byte-identical to
  // inverse_into per packet.
  transform_.inverse_block_reserve(unit.packets, block_scratch_);
  std::size_t rows = 0;
  for (std::size_t i = 0; i < unit.packets; ++i) {
    if (unit.types[i] == gd::PacketType::raw) continue;
    transform_.inverse_block_stage(block_scratch_, rows++, unit.bases[i],
                                   unit.syndromes[i]);
  }
  transform_.inverse_block_expand(block_scratch_, rows);
  rows = 0;
  const std::size_t n = params().n();
  for (std::size_t i = 0; i < unit.packets; ++i) {
    if (unit.types[i] == gd::PacketType::raw) {
      out.append_raw(unit.raws[i]);
      continue;
    }
    chunk_scratch_.assign_from_words(transform_.chunk_row(block_scratch_, rows++),
                                     params().chunk_bits);
    chunk_scratch_.accumulate_shifted(unit.excesses[i], n);
    out.append_chunk(unit.types[i], chunk_scratch_);
  }
  ++stats_.batches;
}

bits::BitVector Engine::decode_packet(const gd::GdPacket& packet) {
  ++stats_.chunks;
  if (packet.type == gd::PacketType::raw) {
    ++stats_.raw_packets;
    stats_.bytes_in += packet.raw.size();
    stats_.bytes_out += packet.raw.size();
    return bits::BitVector::from_bytes(packet.raw, packet.raw.size() * 8);
  }
  // Stage the packet fields in the scratch and run the shared transition,
  // so this adapter path cannot drift from the batch path.
  scratch_.excess = packet.excess;
  if (packet.type == gd::PacketType::uncompressed) {
    scratch_.basis = packet.basis;
  } else {
    scratch_id_ = packet.basis_id;
  }
  decode_step(packet.type, packet.syndrome);
  return chunk_scratch_;
}

void Engine::note_raw_passthrough(std::size_t bytes) {
  ++stats_.chunks;
  note_raw_tail(bytes);
}

void Engine::note_raw_tail(std::size_t bytes) {
  ++stats_.raw_packets;
  stats_.bytes_in += bytes;
  stats_.bytes_out += bytes;
}

void Engine::preload(const bits::BitVector& basis) {
  ZL_EXPECTS(basis.size() == params().k());
  dictionary_.insert_if_absent(basis);
}

}  // namespace zipline::engine
