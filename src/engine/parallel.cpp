#include "engine/parallel.hpp"

namespace zipline::engine {

namespace detail {

SpscRing::SpscRing(std::size_t capacity) {
  ZL_EXPECTS(capacity >= 1);
  std::size_t rounded = 1;
  while (rounded < capacity) rounded <<= 1;
  slots_.resize(rounded);
  mask_ = rounded - 1;
}

bool SpscRing::try_push(std::uint64_t value) noexcept {
  const std::size_t tail = tail_.load(std::memory_order_relaxed);
  const std::size_t head = head_.load(std::memory_order_acquire);
  if (tail - head > mask_) return false;  // full
  slots_[tail & mask_] = value;
  // The release store publishes the slot payload (and everything the
  // producer wrote into the job it references) to the consumer.
  tail_.store(tail + 1, std::memory_order_release);
  return true;
}

bool SpscRing::try_pop(std::uint64_t& value) noexcept {
  const std::size_t head = head_.load(std::memory_order_relaxed);
  const std::size_t tail = tail_.load(std::memory_order_acquire);
  if (head == tail) return false;  // empty
  value = slots_[head & mask_];
  head_.store(head + 1, std::memory_order_release);
  return true;
}

}  // namespace detail

template class ParallelPipeline<EncodeStage>;
template class ParallelPipeline<DecodeStage>;

}  // namespace zipline::engine
