// The batch-oriented encode/decode core every ZipLine consumer runs on.
//
// One Engine owns the GD transform, the codec statistics and the scratch
// state for one direction of one flow (or one worker). The dictionary is
// reached through a gd::DictionaryHandle, which either owns a private
// deterministic dictionary (the historical arrangement, bit-identical and
// still the default) or borrows a shared gd::ConcurrentShardedDictionary —
// the one-table-per-direction service many engines of a parallel pipeline
// consult and teach together (see gd/dictionary_handle.hpp).
//
// Two data paths:
//
//   * Single-pass: encode_payload / decode_batch stream serialized wire
//     payloads into caller-provided EncodeBatch / DecodeBatch arenas,
//     using only internal scratch reused across calls. In steady state
//     (dictionary warm, arena capacities grown) an encode or decode
//     performs zero heap allocations per chunk — verified by
//     tests/engine_alloc_test.cpp and swept by bench_micro_core.
//
//   * Split-phase: encode_transform / encode_resolve / encode_emit (and
//     the decode_* mirror) break one unit of work into a pure transform
//     phase, a dictionary phase and a pure serialization phase, staged in
//     a caller-owned EncodeUnit / DecodeUnit scratch. The parallel
//     pipeline's shared-dictionary mode runs transform and emit
//     concurrently across workers while sequencing only the resolve
//     phases, and the three phases compose to byte-identical output with
//     the single-pass path (same helpers, same order).
//
// The per-chunk GdEncoder/GdDecoder API in gd/codec.hpp is a thin adapter
// over this class; batch and per-chunk paths produce byte-identical wire
// payloads (tests/engine_batch_test.cpp).
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "common/bitio.hpp"
#include "engine/batch.hpp"
#include "gd/dictionary_handle.hpp"
#include "gd/packet.hpp"
#include "gd/stats.hpp"
#include "gd/transform.hpp"

namespace zipline::engine {

struct EngineStats : gd::CodecStats {
  std::uint64_t batches = 0;  ///< encode_payload / decode_batch calls
};

/// Caller-owned scratch for one split-phase encode unit. Vectors only ever
/// grow, so a unit recycled across calls stops allocating once it has seen
/// the largest payload (the same discipline as the batch arenas).
struct EncodeUnit {
  std::size_t chunks = 0;  ///< valid prefix of the vectors below
  std::vector<gd::TransformedChunk> transformed;
  std::vector<gd::PacketType> types;
  std::vector<std::uint32_t> ids;  ///< identifier per compressed chunk
  /// Shared-dictionary engines precompute each basis's content hash here
  /// during the (concurrent) transform phase, so the sequenced resolve
  /// phase spends no time hashing inside its critical section.
  std::vector<std::uint64_t> hashes;
  std::span<const std::uint8_t> tail{};
};

/// Caller-owned scratch for one split-phase decode unit.
struct DecodeUnit {
  std::size_t packets = 0;  ///< valid prefix of the vectors below
  std::vector<gd::PacketType> types;
  std::vector<std::uint32_t> syndromes;
  std::vector<std::uint32_t> ids;
  std::vector<bits::BitVector> excesses;
  std::vector<bits::BitVector> bases;  ///< parsed (type 2) or fetched (type 3)
  /// Content hashes of parsed type-2 bases (shared-dictionary engines
  /// only), computed in the concurrent parse phase — see EncodeUnit.
  std::vector<std::uint64_t> hashes;
  std::vector<std::span<const std::uint8_t>> raws;
};

class Engine {
 public:
  /// Private-dictionary engine. `learn` plays the role of learn_on_miss on
  /// the encode side and learn_on_uncompressed on the decode side; an
  /// Engine instance serves one direction, mirroring the codec's
  /// deterministic learning protocol. `dictionary_shards` splits the
  /// identifier space into that many independent dictionary shards
  /// (gd/sharded_dictionary.hpp); mirrored engines must agree on the shard
  /// count, and 1 (the default) is bit-identical to the historical
  /// unsharded dictionary.
  explicit Engine(const gd::GdParams& params,
                  gd::EvictionPolicy policy = gd::EvictionPolicy::lru,
                  bool learn = true, std::size_t dictionary_shards = 1);

  /// Shared-dictionary engine: consults and teaches `dictionary`, the
  /// one-table-per-direction service this engine shares with its peers.
  /// The service (whose capacity must match the params) must outlive the
  /// engine.
  Engine(const gd::GdParams& params,
         gd::ConcurrentShardedDictionary& dictionary, bool learn = true);

  // --- encode side ------------------------------------------------------

  /// Encodes one chunk of exactly params().chunk_bits bits, appending the
  /// descriptor + serialized wire payload to `out`. Allocation-free in
  /// steady state.
  void encode_chunk(const bits::BitVector& chunk, EncodeBatch& out);

  /// Encodes a byte payload: full chunks become GD packets, a trailing
  /// partial chunk becomes one raw packet. Appends to `out` (callers clear
  /// the batch between payloads to reuse its arena).
  void encode_payload(std::span<const std::uint8_t> payload, EncodeBatch& out);

  /// Per-chunk adapter path: same dictionary/stats transition as
  /// encode_chunk, materialized as an owning GdPacket.
  [[nodiscard]] gd::GdPacket encode_chunk_packet(const bits::BitVector& chunk);

  // --- encode, split-phase ----------------------------------------------
  // transform -> resolve -> emit over one payload is byte- and
  // stats-identical to encode_payload. Only `encode_resolve` touches the
  // dictionary, so it is the only phase a shared-dictionary pipeline needs
  // to sequence; transform and emit are pure per-engine work. The payload
  // memory must stay valid through encode_emit (the raw tail is a view).

  /// Phase 1 (pure): chunk + forward-transform the payload into `unit`.
  void encode_transform(std::span<const std::uint8_t> payload,
                        EncodeUnit& unit);

  /// Phase 2 (dictionary): classify every transformed chunk — consult /
  /// teach the dictionary, fill unit.types / unit.ids, update statistics.
  /// On a shared dictionary the unit's operations are gathered into one
  /// batched plan (gd::BatchOp) and executed with a single stripe
  /// acquisition per (unit, shard) pair; a private dictionary keeps the
  /// per-chunk loop (whose lazy single-shard path can skip hashing
  /// entirely on prefiltered misses). Both produce identical types, ids
  /// and statistics.
  void encode_resolve(EncodeUnit& unit);

  /// Phase 3 (pure): serialize the classified unit (and raw tail) into the
  /// batch arena, mirroring encode_chunk's wire layout exactly.
  void encode_emit(const EncodeUnit& unit, EncodeBatch& out);

  // --- decode side ------------------------------------------------------

  /// Decodes one wire payload of the given type, appending the recovered
  /// chunk (or pass-through raw bytes) to `out`. For types 2/3 only the
  /// leading type{2,3}_payload_bytes() of `payload` are consumed, so frame
  /// padding behind the packet is ignored. Allocation-free in steady state.
  void decode_wire(gd::PacketType type, std::span<const std::uint8_t> payload,
                   DecodeBatch& out);

  /// Decodes every packet of an encoded batch.
  void decode_batch(const EncodeBatch& in, DecodeBatch& out);

  /// Per-chunk adapter path: decodes one parsed packet to chunk bits.
  [[nodiscard]] bits::BitVector decode_packet(const gd::GdPacket& packet);

  // --- decode, split-phase ----------------------------------------------
  // parse -> resolve -> emit over one encoded batch is byte- and
  // stats-identical to decode_batch; only decode_resolve touches the
  // dictionary. The input batch must stay valid through decode_emit (raw
  // payloads are views into it).

  /// Phase 1 (pure): parse every wire payload of `in` into `unit`.
  void decode_parse(const EncodeBatch& in, DecodeUnit& unit);

  /// Phase 2 (dictionary): learn type-2 bases, fetch type-3 bases (copied
  /// into the unit), update statistics. Batched on a shared dictionary —
  /// see encode_resolve.
  void decode_resolve(DecodeUnit& unit);

  /// Phase 3 (pure): inverse-transform every chunk into the decode arena.
  void decode_emit(const DecodeUnit& unit, DecodeBatch& out);

  // --- split resolve (shared dictionary, per-shard sequencing) ----------
  // The parallel pipeline's per-shard turnstiles split one resolve into
  // three finer phases: *plan* gathers the unit's dictionary operations
  // and groups them by shard WITHOUT touching the dictionary (pure, runs
  // concurrently), *resolve_shard* executes one shard's group under one
  // stripe acquisition (sequenced per shard by the pipeline), and
  // *finish* consumes the results into types/ids and statistics (pure).
  // plan -> resolve_shard over every touched shard (any order) -> finish
  // is op-for-op identical to encode_resolve / decode_resolve. Shared-
  // dictionary engines only; one plan in flight per engine.

  /// Builds and groups the encode unit's resolve plan (pure).
  void encode_resolve_plan(EncodeUnit& unit);
  /// Consumes the executed plan: types / ids / statistics (pure).
  void encode_resolve_finish(EncodeUnit& unit);
  /// Decode-side plan/finish mirror.
  void decode_resolve_plan(DecodeUnit& unit);
  void decode_resolve_finish(DecodeUnit& unit);

  /// True when the current plan routes at least one op to shard `shard`.
  [[nodiscard]] bool resolve_plan_touches(std::size_t shard) const noexcept {
    return shard < batch_scratch_.counts.size() &&
           batch_scratch_.counts[shard] != 0;
  }
  /// Executes the current plan's group for `shard` (one stripe
  /// acquisition; no-op when the plan has no ops there).
  void resolve_shard(std::size_t shard);

  /// Accounts a decode-side raw packet passing through untouched (used by
  /// the payload adapters, which splice raw bytes directly).
  void note_raw_passthrough(std::size_t bytes);

  /// Accounts an encode-side raw tail (counted as a packet, not a chunk).
  void note_raw_tail(std::size_t bytes);

  // --- shared state -----------------------------------------------------

  /// Pre-loads the dictionary with a basis (the paper's "static table").
  void preload(const bits::BitVector& basis);

  [[nodiscard]] const gd::GdParams& params() const noexcept {
    return transform_.params();
  }
  [[nodiscard]] const gd::GdTransform& transform() const noexcept {
    return transform_;
  }
  /// The underlying deterministic dictionary. In shared mode this is the
  /// service's unsynchronized view — inspect it only while quiescent.
  [[nodiscard]] const gd::ShardedDictionary& dictionary() const noexcept {
    return dictionary_.view();
  }
  [[nodiscard]] const gd::DictionaryHandle& dictionary_handle() const noexcept {
    return dictionary_;
  }
  [[nodiscard]] const EngineStats& stats() const noexcept { return stats_; }

 private:
  /// Shared encode transition: transform the chunk into scratch_, consult /
  /// teach the dictionary, update stats. Returns the resulting wire type;
  /// for type 3 the identifier is left in scratch_id_.
  gd::PacketType encode_step(const bits::BitVector& chunk);

  /// Dictionary half of encode_step, shared with encode_resolve: consults /
  /// teaches the dictionary for one transformed chunk and updates stats;
  /// `id` receives the identifier on a hit.
  gd::PacketType classify(const gd::TransformedChunk& transformed,
                          std::uint32_t& id);

  /// Serializes one classified chunk into the batch arena — the single
  /// place that knows the wire field order, shared by encode_chunk and
  /// encode_emit.
  void emit_chunk(const gd::TransformedChunk& transformed, gd::PacketType type,
                  std::uint32_t id, EncodeBatch& out);

  /// Type 2/3 decode transition shared by both single-pass decode paths;
  /// leaves the recovered chunk in chunk_scratch_.
  void decode_step(gd::PacketType type, std::uint32_t syndrome);

  gd::GdTransform transform_;
  gd::DictionaryHandle dictionary_;
  bool learn_;
  EngineStats stats_;

  // Scratch state reused across calls (the allocation-free core).
  gd::TransformedChunk scratch_;
  std::uint32_t scratch_id_ = 0;
  bits::BitVector word_scratch_;
  bits::BitVector chunk_scratch_;
  bits::BitVector basis_scratch_;  ///< shared-mode copy of a fetched basis
  bits::BitWriter writer_;
  /// Batched-resolve staging (shared mode): built and consumed inside one
  /// resolve call; grow-only, like every other scratch.
  std::vector<gd::BatchOp> batch_ops_;
  gd::BatchScratch batch_scratch_;
  /// Word-plane scratch of the block transform fast path: a whole unit's
  /// chunks canonicalize/expand as one kernel batch in encode_transform /
  /// decode_emit (see src/engine/README.md, "transform fast path").
  gd::TransformBlockScratch block_scratch_;
};

}  // namespace zipline::engine
