// The batch-oriented encode/decode core every ZipLine consumer runs on.
//
// One Engine owns the GD transform, the basis dictionary and the codec
// statistics for one direction of one flow — the same state a GdEncoder or
// GdDecoder used to own. The difference is the data path: instead of one
// heap-allocated GdPacket per chunk, the engine streams serialized wire
// payloads into a caller-provided EncodeBatch / DecodeBatch arena, using
// only internal scratch buffers that are reused across calls. In steady
// state (dictionary warm, arena capacities grown) an encode or decode
// performs zero heap allocations per chunk — verified by
// tests/engine_alloc_test.cpp and swept by bench_micro_core.
//
// The per-chunk GdEncoder/GdDecoder API in gd/codec.hpp is a thin adapter
// over this class; batch and per-chunk paths produce byte-identical wire
// payloads (tests/engine_batch_test.cpp).
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "common/bitio.hpp"
#include "engine/batch.hpp"
#include "gd/packet.hpp"
#include "gd/sharded_dictionary.hpp"
#include "gd/stats.hpp"
#include "gd/transform.hpp"

namespace zipline::engine {

struct EngineStats : gd::CodecStats {
  std::uint64_t batches = 0;  ///< encode_payload / decode_batch calls
};

class Engine {
 public:
  /// `learn` plays the role of learn_on_miss on the encode side and
  /// learn_on_uncompressed on the decode side; an Engine instance serves
  /// one direction, mirroring the codec's deterministic learning protocol.
  /// `dictionary_shards` splits the identifier space into that many
  /// independent dictionary shards (gd/sharded_dictionary.hpp); mirrored
  /// engines must agree on the shard count, and 1 (the default) is
  /// bit-identical to the historical unsharded dictionary.
  explicit Engine(const gd::GdParams& params,
                  gd::EvictionPolicy policy = gd::EvictionPolicy::lru,
                  bool learn = true, std::size_t dictionary_shards = 1);

  // --- encode side ------------------------------------------------------

  /// Encodes one chunk of exactly params().chunk_bits bits, appending the
  /// descriptor + serialized wire payload to `out`. Allocation-free in
  /// steady state.
  void encode_chunk(const bits::BitVector& chunk, EncodeBatch& out);

  /// Encodes a byte payload: full chunks become GD packets, a trailing
  /// partial chunk becomes one raw packet. Appends to `out` (callers clear
  /// the batch between payloads to reuse its arena).
  void encode_payload(std::span<const std::uint8_t> payload, EncodeBatch& out);

  /// Per-chunk adapter path: same dictionary/stats transition as
  /// encode_chunk, materialized as an owning GdPacket.
  [[nodiscard]] gd::GdPacket encode_chunk_packet(const bits::BitVector& chunk);

  // --- decode side ------------------------------------------------------

  /// Decodes one wire payload of the given type, appending the recovered
  /// chunk (or pass-through raw bytes) to `out`. For types 2/3 only the
  /// leading type{2,3}_payload_bytes() of `payload` are consumed, so frame
  /// padding behind the packet is ignored. Allocation-free in steady state.
  void decode_wire(gd::PacketType type, std::span<const std::uint8_t> payload,
                   DecodeBatch& out);

  /// Decodes every packet of an encoded batch.
  void decode_batch(const EncodeBatch& in, DecodeBatch& out);

  /// Per-chunk adapter path: decodes one parsed packet to chunk bits.
  [[nodiscard]] bits::BitVector decode_packet(const gd::GdPacket& packet);

  /// Accounts a decode-side raw packet passing through untouched (used by
  /// the payload adapters, which splice raw bytes directly).
  void note_raw_passthrough(std::size_t bytes);

  /// Accounts an encode-side raw tail (counted as a packet, not a chunk).
  void note_raw_tail(std::size_t bytes);

  // --- shared state -----------------------------------------------------

  /// Pre-loads the dictionary with a basis (the paper's "static table").
  void preload(const bits::BitVector& basis);

  [[nodiscard]] const gd::GdParams& params() const noexcept {
    return transform_.params();
  }
  [[nodiscard]] const gd::GdTransform& transform() const noexcept {
    return transform_;
  }
  [[nodiscard]] const gd::ShardedDictionary& dictionary() const noexcept {
    return dictionary_;
  }
  [[nodiscard]] const EngineStats& stats() const noexcept { return stats_; }

 private:
  /// Shared encode transition: transform the chunk into scratch_, consult /
  /// teach the dictionary, update stats. Returns the resulting wire type;
  /// for type 3 the identifier is left in scratch_id_.
  gd::PacketType encode_step(const bits::BitVector& chunk);

  /// Type 2/3 decode transition shared by both decode paths; leaves the
  /// recovered chunk in chunk_scratch_.
  void decode_step(gd::PacketType type, std::uint32_t syndrome);

  gd::GdTransform transform_;
  gd::ShardedDictionary dictionary_;
  bool learn_;
  EngineStats stats_;

  // Scratch state reused across calls (the allocation-free core).
  gd::TransformedChunk scratch_;
  std::uint32_t scratch_id_ = 0;
  bits::BitVector word_scratch_;
  bits::BitVector chunk_scratch_;
  bits::BitWriter writer_;
};

}  // namespace zipline::engine
