// Packet sinks: where encoded batches go without intermediate vectors.
//
// A PacketSink consumes (descriptor, wire-payload view) pairs streamed
// straight out of an EncodeBatch arena. Concrete sinks adapt that stream
// to a destination: GDZ1 container records (gd/stream.cpp), Ethernet
// frames for the simulator or a pcap file (below), or nothing at all for
// benchmarking the bare engine. Sinks are intentionally header-only and
// duck-typed through the concept so downstream layers can add their own
// without touching the engine.
#pragma once

#include <concepts>
#include <cstdint>
#include <span>
#include <utility>

#include "engine/batch.hpp"
#include "net/ethernet.hpp"
#include "net/pcap.hpp"

namespace zipline::engine {

template <typename S>
concept PacketSink = requires(S sink, const PacketDesc& desc,
                              std::span<const std::uint8_t> payload) {
  sink.on_packet(desc, payload);
};

/// Streams every packet of a batch into a sink, in order.
template <PacketSink S>
void drain(const EncodeBatch& batch, S&& sink) {
  for (const PacketDesc& desc : batch.packets()) {
    sink.on_packet(desc, batch.payload(desc));
  }
}

/// Discards packets (bench harness for the bare engine).
struct NullSink {
  void on_packet(const PacketDesc&, std::span<const std::uint8_t>) {}
};

/// Counts packets and bytes per wire type.
struct CountingSink {
  std::uint64_t packets = 0;
  std::uint64_t payload_bytes = 0;
  std::uint64_t raw = 0;
  std::uint64_t uncompressed = 0;
  std::uint64_t compressed = 0;

  void on_packet(const PacketDesc& desc, std::span<const std::uint8_t> payload) {
    ++packets;
    payload_bytes += payload.size();
    switch (desc.type) {
      case gd::PacketType::raw: ++raw; break;
      case gd::PacketType::uncompressed: ++uncompressed; break;
      case gd::PacketType::compressed: ++compressed; break;
    }
  }
};

/// Wraps each packet in an Ethernet frame (EtherType chosen from the
/// packet type) and hands it to a callback — the simulator/testbed path.
/// One frame object is reused, so a steady-state sink does not allocate
/// beyond the callback's own needs.
template <typename F>
  requires std::invocable<F&, const net::EthernetFrame&>
class FrameSink {
 public:
  FrameSink(net::MacAddress src, net::MacAddress dst, F on_frame)
      : on_frame_(std::move(on_frame)) {
    frame_.src = src;
    frame_.dst = dst;
  }

  void on_packet(const PacketDesc& desc, std::span<const std::uint8_t> payload) {
    frame_.ether_type = gd::ether_type_for(desc.type);
    frame_.payload.assign(payload.begin(), payload.end());
    on_frame_(frame_);
  }

 private:
  net::EthernetFrame frame_;
  F on_frame_;
};

/// Writes each packet as a frame into a pcap file, advancing the
/// timestamp by `gap_us` per packet.
class PcapSink {
 public:
  PcapSink(net::PcapWriter& writer, net::MacAddress src, net::MacAddress dst,
           std::uint64_t start_us = 0, std::uint64_t gap_us = 1)
      : writer_(&writer), timestamp_us_(start_us), gap_us_(gap_us) {
    frame_.src = src;
    frame_.dst = dst;
  }

  void on_packet(const PacketDesc& desc, std::span<const std::uint8_t> payload) {
    frame_.ether_type = gd::ether_type_for(desc.type);
    frame_.payload.assign(payload.begin(), payload.end());
    writer_->write_frame(frame_, timestamp_us_);
    timestamp_us_ += gap_us_;
  }

 private:
  net::EthernetFrame frame_;
  net::PcapWriter* writer_;
  std::uint64_t timestamp_us_;
  std::uint64_t gap_us_;
};

}  // namespace zipline::engine
