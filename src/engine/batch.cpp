#include "engine/batch.hpp"

#include "common/contracts.hpp"

namespace zipline::engine {

void EncodeBatch::append(gd::PacketType type, std::uint32_t syndrome,
                         std::uint32_t basis_id,
                         std::span<const std::uint8_t> bytes) {
  ZL_EXPECTS(storage_.size() + bytes.size() <= 0xFFFFFFFFu);
  PacketDesc desc;
  desc.type = type;
  desc.offset = static_cast<std::uint32_t>(storage_.size());
  desc.size = static_cast<std::uint32_t>(bytes.size());
  desc.syndrome = syndrome;
  desc.basis_id = basis_id;
  storage_.insert(storage_.end(), bytes.begin(), bytes.end());
  packets_.push_back(desc);
}

void DecodeBatch::append_chunk(gd::PacketType from_type,
                               const bits::BitVector& chunk) {
  ZL_EXPECTS(bytes_.size() + (chunk.size() + 7) / 8 <= 0xFFFFFFFFu);
  ChunkDesc desc;
  desc.from_type = from_type;
  desc.offset = static_cast<std::uint32_t>(bytes_.size());
  chunk.append_bytes_to(bytes_);
  desc.size = static_cast<std::uint32_t>(bytes_.size()) - desc.offset;
  chunks_.push_back(desc);
}

void DecodeBatch::append_raw(std::span<const std::uint8_t> bytes) {
  ZL_EXPECTS(bytes_.size() + bytes.size() <= 0xFFFFFFFFu);
  ChunkDesc desc;
  desc.from_type = gd::PacketType::raw;
  desc.offset = static_cast<std::uint32_t>(bytes_.size());
  desc.size = static_cast<std::uint32_t>(bytes.size());
  bytes_.insert(bytes_.end(), bytes.begin(), bytes.end());
  chunks_.push_back(desc);
}

}  // namespace zipline::engine
