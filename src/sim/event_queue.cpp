#include "sim/event_queue.hpp"

#include "common/contracts.hpp"

namespace zipline::sim {

void EventQueue::schedule(SimTime at, std::function<void()> fn) {
  ZL_EXPECTS(at >= now_ && "cannot schedule into the past");
  queue_.push(Event{at, next_seq_++, std::move(fn)});
}

std::size_t EventQueue::run_until(SimTime until) {
  std::size_t executed = 0;
  while (!queue_.empty() && queue_.top().at <= until) {
    // Copy out before pop: the handler may schedule new events.
    Event event = queue_.top();
    queue_.pop();
    now_ = event.at;
    event.fn();
    ++executed;
  }
  if (now_ < until) now_ = until;
  return executed;
}

std::size_t EventQueue::run_all() {
  std::size_t executed = 0;
  while (!queue_.empty()) {
    Event event = queue_.top();
    queue_.pop();
    now_ = event.at;
    event.fn();
    ++executed;
  }
  return executed;
}

}  // namespace zipline::sim
