// Discrete-event core: a time-ordered queue of closures.
//
// Determinism: events at equal timestamps run in insertion order (a
// monotonic sequence number breaks ties), so simulations are reproducible
// run to run regardless of container internals.
#pragma once

#include <cstdint>
#include <functional>
#include <queue>
#include <vector>

#include "common/scheduler.hpp"

namespace zipline::sim {

class EventQueue final : public Scheduler {
 public:
  void schedule(SimTime at, std::function<void()> fn) override;
  [[nodiscard]] SimTime now() const override { return now_; }

  /// Runs events until the queue is empty or the next event is after
  /// `until`; returns the number of events executed.
  std::size_t run_until(SimTime until);

  /// Runs everything (use only when the event graph terminates).
  std::size_t run_all();

  [[nodiscard]] bool empty() const { return queue_.empty(); }
  [[nodiscard]] std::size_t pending() const { return queue_.size(); }

 private:
  struct Event {
    SimTime at;
    std::uint64_t seq;
    std::function<void()> fn;
  };
  struct Later {
    bool operator()(const Event& a, const Event& b) const {
      if (a.at != b.at) return a.at > b.at;
      return a.seq > b.seq;
    }
  };

  std::priority_queue<Event, std::vector<Event>, Later> queue_;
  SimTime now_ = 0;
  std::uint64_t next_seq_ = 0;
};

}  // namespace zipline::sim
