// Sample statistics used by the benchmark harnesses: the paper reports
// "the average and the 95% confidence interval" over 10 repetitions (§7).
#pragma once

#include <cmath>
#include <vector>

#include "common/contracts.hpp"

namespace zipline::sim {

struct SampleStats {
  double mean = 0;
  double stddev = 0;
  double ci95_half_width = 0;  ///< half-width of the 95% CI of the mean
  std::size_t count = 0;
};

inline SampleStats summarize(const std::vector<double>& samples) {
  SampleStats s;
  s.count = samples.size();
  if (samples.empty()) return s;
  double sum = 0;
  for (const double v : samples) sum += v;
  s.mean = sum / static_cast<double>(samples.size());
  if (samples.size() < 2) return s;
  double sq = 0;
  for (const double v : samples) sq += (v - s.mean) * (v - s.mean);
  s.stddev = std::sqrt(sq / static_cast<double>(samples.size() - 1));
  // Normal-approximation 95% CI (the paper's repetition count is 10; the
  // z value is close enough to the t value for presentation purposes).
  s.ci95_half_width =
      1.96 * s.stddev / std::sqrt(static_cast<double>(samples.size()));
  return s;
}

}  // namespace zipline::sim
