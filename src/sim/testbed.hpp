// The paper's testbed (§7), assembled: two servers connected at
// 100 Gbit/s through one Wedge100BF-32X running the ZipLine program, plus
// the control plane. Experiment runners for Figures 4 and 5 and for the
// dynamic-learning measurement live here and are shared by the benchmark
// binaries and the examples.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "sim/event_queue.hpp"
#include "sim/host.hpp"
#include "sim/link.hpp"
#include "sim/stats.hpp"
#include "sim/switch_node.hpp"
#include "zipline/controller.hpp"
#include "zipline/program.hpp"

namespace zipline::sim {

struct TestbedConfig {
  prog::ZipLineConfig switch_config;
  prog::ControlPlaneTiming cp_timing;
  HostTiming host_timing;
  double link_gbps = 100.0;
  SimTime propagation_delay = 25;  // ns; a few meters of DAC cable
  /// Hairpin wiring (port 1 -> port 1): the Fig. 5 send-to-self setup.
  bool hairpin = false;
  std::uint64_t seed = 1;
};

/// Two servers, one switch, one control plane.
class Testbed {
 public:
  explicit Testbed(const TestbedConfig& config);

  [[nodiscard]] EventQueue& events() noexcept { return events_; }
  [[nodiscard]] Host& server1() noexcept { return *server1_; }
  [[nodiscard]] Host& server2() noexcept { return *server2_; }
  [[nodiscard]] prog::ZipLineProgram& program() noexcept { return *program_; }
  [[nodiscard]] prog::Controller& controller() noexcept { return *controller_; }
  [[nodiscard]] tofino::SwitchModel& switch_model() noexcept {
    return switch_node_->model();
  }

 private:
  EventQueue events_;
  std::shared_ptr<prog::ZipLineProgram> program_;
  std::unique_ptr<SwitchNode> switch_node_;
  std::unique_ptr<Host> server1_;
  std::unique_ptr<Host> server2_;
  std::unique_ptr<Link> link1_;
  std::unique_ptr<Link> link2_;
  std::unique_ptr<prog::Controller> controller_;
};

// ---------------------------------------------------------------------------
// Figure 4: throughput
// ---------------------------------------------------------------------------

struct ThroughputResult {
  double gbps = 0;
  double mpps = 0;
  std::uint64_t frames = 0;
};

/// Streams `duration` worth of `frame_bytes`-sized frames from server 1 to
/// server 2 with the switch performing `op`; measures the receiver-side
/// steady-state rate (after `warmup`). For the encode/decode operations the
/// 64 B row carries genuine GD traffic (32 B chunk payloads / type-2
/// payloads); larger frames pass through the program untouched, as any
/// non-chunk traffic does on the real artifact.
ThroughputResult run_throughput(prog::SwitchOp op, std::size_t frame_bytes,
                                SimTime duration, SimTime warmup = 0,
                                std::uint64_t seed = 1);

/// Batch companion to run_throughput: server 1 streams GD chunk traffic
/// staged once through the engine batch path (`batch_chunks` chunks per
/// EncodeBatch, cycled for the whole window) instead of regenerating a
/// payload per frame. Encode ops stream raw chunk frames; decode ops
/// stream the batch pre-encoded to type-2 packets. Measures the same
/// receiver-side steady-state rate, so the batch-size sweep in
/// bench_fig4_throughput quantifies what sender-side batching buys.
///
/// `stage_workers` > 1 prepares the traffic on the engine's parallel
/// pipeline instead (engine/parallel.hpp): the chunk stream splits into
/// one flow per worker, each staged into its own batch concurrently, and
/// the host cycles the staged batches round-robin. The switch-side rate
/// is per-packet and stays flat — what parallel staging changes is the
/// wall-clock cost of preparing the traffic, swept by
/// bench_fig4_throughput.
ThroughputResult run_batch_throughput(prog::SwitchOp op,
                                      std::size_t batch_chunks,
                                      SimTime duration, SimTime warmup = 0,
                                      std::uint64_t seed = 1,
                                      std::size_t stage_workers = 1);

// ---------------------------------------------------------------------------
// Figure 5: latency
// ---------------------------------------------------------------------------

struct LatencyResult {
  SampleStats rtt_us;
  std::vector<double> samples_us;
};

/// One server pings itself through the switch (hairpin), RTT measured
/// app-to-app, with the switch performing `op`.
LatencyResult run_latency(prog::SwitchOp op, std::uint64_t probes,
                          std::uint64_t seed = 1);

// ---------------------------------------------------------------------------
// §7 "Dynamic learning": time from first type-2 to first type-3
// ---------------------------------------------------------------------------

struct LearningResult {
  SampleStats learning_ms;
  std::vector<double> samples_ms;
};

/// Repeats the paper's experiment `repetitions` times: blast copies of one
/// (per-repetition) chunk through an encode switch with an empty table and
/// measure, at the destination, the gap between the first uncompressed and
/// the first compressed packet.
LearningResult run_learning(std::uint64_t repetitions,
                            const prog::ControlPlaneTiming& timing = {},
                            std::uint64_t seed = 1);

}  // namespace zipline::sim
