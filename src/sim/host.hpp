// End hosts: the Dell R7515 / ConnectX-5 servers of the paper's testbed.
//
// The host model reproduces the bottlenecks §7 reports: the traffic
// generator saturates around 7 Mpkt/s ("bottlenecked at around 7 Mpkt/s by
// the server generating the traffic"), NIC and userspace add a few
// microseconds each way, and the sink counts what arrives. A host can also
// run an RTT probe stream, mirroring raw_ethernet_lat's
// send-to-self-via-the-switch setup used for Fig. 5.
#pragma once

#include <functional>
#include <optional>
#include <span>
#include <vector>

#include "common/rng.hpp"
#include "common/scheduler.hpp"
#include "engine/batch.hpp"
#include "net/mac.hpp"
#include "sim/link.hpp"

namespace zipline::sim {

struct HostTiming {
  /// Per-packet generator CPU cost: 1/7e6 s by default (~7 Mpkt/s cap).
  SimTime tx_cpu_per_packet = 143;  // ns
  /// NIC/PCIe latency per direction (ConnectX-5 on PCIe 3.0 x16 with the
  /// userspace-visible DMA/doorbell costs folded in).
  SimTime nic_tx_latency = 2500;  // ns
  SimTime nic_rx_latency = 2500;  // ns
  /// Userspace overhead on send and on receive completion (timestamping
  /// happens in the application, as with raw_ethernet_lat).
  SimTime app_tx_overhead = 4000;  // ns
  SimTime app_rx_overhead = 3000;  // ns
  /// Gaussian jitter applied to app overheads.
  double jitter_sigma_ns = 300;
};

struct SinkStats {
  std::uint64_t frames = 0;
  std::uint64_t frame_bytes = 0;
  std::uint64_t payload_bytes = 0;
  SimTime first_arrival = -1;
  SimTime last_arrival = -1;
};

class Host final : public LinkEndpoint {
 public:
  Host(Scheduler& scheduler, net::MacAddress mac, HostTiming timing = {},
       std::uint64_t seed = 0x4057);

  void attach_link(Link* link) { link_ = link; }
  [[nodiscard]] net::MacAddress mac() const noexcept { return mac_; }

  // --- traffic generation -----------------------------------------------

  /// Starts a fixed-rate-capped stream of `count` frames to `dst`, payload
  /// produced per frame by `make_payload(i)`, EtherType per frame by
  /// `ether_type(i)`. The achieved rate is min(CPU cap, line rate).
  void start_stream(net::MacAddress dst, std::uint64_t count,
                    std::function<std::vector<std::uint8_t>(std::uint64_t)>
                        make_payload,
                    std::function<std::uint16_t(std::uint64_t)> ether_type,
                    SimTime start_at);

  /// Convenience: constant payload bytes / fixed EtherType.
  void start_stream(net::MacAddress dst, std::uint64_t count,
                    std::size_t payload_bytes, std::uint16_t ether_type,
                    SimTime start_at);

  /// Streams a pre-encoded batch: one frame per descriptor, EtherType
  /// derived from the descriptor's packet type, payload taken from the
  /// batch arena. `repeat` cycles through the batch that many times (the
  /// raw_ethernet_bw pattern of retransmitting one prepared buffer). The
  /// batch must outlive the stream.
  void start_batch_stream(net::MacAddress dst,
                          const engine::EncodeBatch& batch, SimTime start_at,
                          std::uint64_t repeat = 1);

  /// Streams several staged batches back to back (cycling the span in
  /// index order, `repeat` full cycles) — the shape the parallel stager
  /// produces: units prepared concurrently across the pool, delivered in
  /// submission order, then handed to the single TX path. When the stager
  /// ran with the shared dictionary service (one table per direction, as
  /// the switch decodes with), index order IS dictionary order, so the
  /// wire sequence replays exactly. The batches must outlive the stream.
  void start_batch_stream(net::MacAddress dst,
                          std::span<const engine::EncodeBatch> batches,
                          SimTime start_at, std::uint64_t repeat = 1);

  /// Sends a single frame immediately through the normal TX path.
  void send_frame(net::EthernetFrame frame, SimTime now);

  [[nodiscard]] std::uint64_t frames_sent() const noexcept {
    return frames_sent_;
  }

  // --- receive side -------------------------------------------------------

  void on_frame(const net::EthernetFrame& frame, SimTime now) override;

  [[nodiscard]] const SinkStats& sink() const noexcept { return sink_; }

  /// Optional per-frame tap (invoked after app_rx_overhead).
  void set_rx_tap(
      std::function<void(const net::EthernetFrame&, SimTime)> tap) {
    rx_tap_ = std::move(tap);
  }

  // --- RTT probing ----------------------------------------------------------

  /// Sends `count` probes of `payload_bytes` spaced by `gap`; the network
  /// must return them to this host (the Fig. 5 hairpin). Completed RTTs
  /// (app-to-app, in ns) accumulate in rtt_samples().
  void start_probes(net::MacAddress dst, std::uint64_t count,
                    std::size_t payload_bytes, SimTime gap, SimTime start_at);

  [[nodiscard]] const std::vector<double>& rtt_samples() const noexcept {
    return rtt_samples_;
  }

 private:
  void generate_next();
  [[nodiscard]] SimTime jittered(SimTime nominal);

  Scheduler& scheduler_;
  net::MacAddress mac_;
  HostTiming timing_;
  Rng rng_;
  Link* link_ = nullptr;

  // stream state
  net::MacAddress stream_dst_;
  std::uint64_t stream_remaining_ = 0;
  std::uint64_t stream_index_ = 0;
  std::function<std::vector<std::uint8_t>(std::uint64_t)> make_payload_;
  std::function<std::uint16_t(std::uint64_t)> ether_type_;
  std::uint64_t frames_sent_ = 0;

  // probe state: send timestamp per outstanding probe sequence number.
  std::vector<SimTime> probe_sent_at_;
  std::vector<double> rtt_samples_;

  SinkStats sink_;
  std::function<void(const net::EthernetFrame&, SimTime)> rx_tap_;
};

}  // namespace zipline::sim
