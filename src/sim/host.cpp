#include "sim/host.hpp"

#include <algorithm>

#include "common/contracts.hpp"
#include "gd/packet.hpp"

namespace zipline::sim {

Host::Host(Scheduler& scheduler, net::MacAddress mac, HostTiming timing,
           std::uint64_t seed)
    : scheduler_(scheduler), mac_(mac), timing_(timing), rng_(seed) {}

SimTime Host::jittered(SimTime nominal) {
  const double v = static_cast<double>(nominal) +
                   rng_.next_normal(0.0, timing_.jitter_sigma_ns);
  return std::max<SimTime>(static_cast<SimTime>(v), 0);
}

void Host::start_stream(
    net::MacAddress dst, std::uint64_t count,
    std::function<std::vector<std::uint8_t>(std::uint64_t)> make_payload,
    std::function<std::uint16_t(std::uint64_t)> ether_type, SimTime start_at) {
  ZL_EXPECTS(link_ != nullptr);
  ZL_EXPECTS(stream_remaining_ == 0 && "stream already in progress");
  stream_dst_ = dst;
  stream_remaining_ = count;
  stream_index_ = 0;
  make_payload_ = std::move(make_payload);
  ether_type_ = std::move(ether_type);
  scheduler_.schedule(start_at, [this] { generate_next(); });
}

void Host::start_stream(net::MacAddress dst, std::uint64_t count,
                        std::size_t payload_bytes, std::uint16_t ether_type,
                        SimTime start_at) {
  // raw_ethernet_bw semantics: one random buffer allocated up front and
  // retransmitted for the whole stream.
  std::vector<std::uint8_t> payload(payload_bytes);
  for (auto& b : payload) b = static_cast<std::uint8_t>(rng_.next_u64());
  start_stream(
      dst, count, [payload](std::uint64_t) { return payload; },
      [ether_type](std::uint64_t) { return ether_type; }, start_at);
}

void Host::start_batch_stream(net::MacAddress dst,
                              const engine::EncodeBatch& batch,
                              SimTime start_at, std::uint64_t repeat) {
  ZL_EXPECTS(!batch.empty());
  const engine::EncodeBatch* staged = &batch;
  start_stream(
      dst, batch.size() * repeat,
      [staged](std::uint64_t i) {
        const auto payload = staged->payload(i % staged->size());
        return std::vector<std::uint8_t>(payload.begin(), payload.end());
      },
      [staged](std::uint64_t i) {
        return gd::ether_type_for(staged->packet(i % staged->size()).type);
      },
      start_at);
}

void Host::start_batch_stream(net::MacAddress dst,
                              std::span<const engine::EncodeBatch> batches,
                              SimTime start_at, std::uint64_t repeat) {
  ZL_EXPECTS(!batches.empty());
  std::uint64_t cycle = 0;
  for (const engine::EncodeBatch& batch : batches) {
    ZL_EXPECTS(!batch.empty());
    cycle += batch.size();
  }
  // Maps a stream index to (batch, packet) across the staged span; the
  // span is tiny (one batch per stager worker), so the walk is cheap.
  const auto locate = [batches, cycle](std::uint64_t i) {
    std::uint64_t index = i % cycle;
    for (const engine::EncodeBatch& batch : batches) {
      if (index < batch.size()) {
        return std::pair<const engine::EncodeBatch*, std::size_t>(
            &batch, static_cast<std::size_t>(index));
      }
      index -= batch.size();
    }
    ZL_ASSERT(false && "index within cycle");
    return std::pair<const engine::EncodeBatch*, std::size_t>(nullptr, 0);
  };
  start_stream(
      dst, cycle * repeat,
      [locate](std::uint64_t i) {
        const auto [batch, k] = locate(i);
        const auto payload = batch->payload(k);
        return std::vector<std::uint8_t>(payload.begin(), payload.end());
      },
      [locate](std::uint64_t i) {
        const auto [batch, k] = locate(i);
        return gd::ether_type_for(batch->packet(k).type);
      },
      start_at);
}

void Host::generate_next() {
  if (stream_remaining_ == 0) return;
  --stream_remaining_;
  net::EthernetFrame frame;
  frame.dst = stream_dst_;
  frame.src = mac_;
  frame.ether_type = ether_type_(stream_index_);
  frame.payload = make_payload_(stream_index_);
  ++stream_index_;

  // App + NIC TX path, then the wire. The link returns when its TX side
  // frees up; the next frame leaves when both CPU and wire are ready.
  const SimTime cpu_ready =
      scheduler_.now() + std::max<SimTime>(timing_.tx_cpu_per_packet, 1);
  const SimTime on_wire_at = scheduler_.now() + timing_.nic_tx_latency;
  ++frames_sent_;
  const SimTime wire_free =
      link_->transmit(this, std::move(frame), on_wire_at);
  if (stream_remaining_ > 0) {
    scheduler_.schedule(std::max(cpu_ready, wire_free - timing_.nic_tx_latency),
                        [this] { generate_next(); });
  }
}

void Host::send_frame(net::EthernetFrame frame, SimTime now) {
  ZL_EXPECTS(link_ != nullptr);
  (void)link_->transmit(this, std::move(frame), now + timing_.nic_tx_latency);
}

void Host::on_frame(const net::EthernetFrame& frame, SimTime now) {
  const SimTime app_time =
      now + timing_.nic_rx_latency + jittered(timing_.app_rx_overhead);
  ++sink_.frames;
  sink_.frame_bytes += frame.frame_bytes();
  sink_.payload_bytes += frame.payload.size();
  if (sink_.first_arrival < 0) sink_.first_arrival = app_time;
  sink_.last_arrival = app_time;

  // RTT probe return path: we recognize our own probes by source MAC.
  if (frame.src == mac_ && frame.payload.size() >= 8) {
    std::uint64_t seq = 0;
    for (int i = 0; i < 8; ++i) {
      seq = (seq << 8) | frame.payload[static_cast<std::size_t>(i)];
    }
    if (seq < probe_sent_at_.size() && probe_sent_at_[seq] >= 0) {
      rtt_samples_.push_back(
          static_cast<double>(app_time - probe_sent_at_[seq]));
      probe_sent_at_[seq] = -1;
    }
  }
  if (rx_tap_) {
    const net::EthernetFrame copy = frame;
    scheduler_.schedule(app_time, [this, copy, app_time] {
      rx_tap_(copy, app_time);
    });
  }
}

void Host::start_probes(net::MacAddress dst, std::uint64_t count,
                        std::size_t payload_bytes, SimTime gap,
                        SimTime start_at) {
  ZL_EXPECTS(link_ != nullptr);
  ZL_EXPECTS(payload_bytes >= 8);
  probe_sent_at_.assign(count, -1);
  for (std::uint64_t seq = 0; seq < count; ++seq) {
    scheduler_.schedule(
        start_at + static_cast<SimTime>(seq) * gap, [this, dst, seq,
                                                     payload_bytes] {
          net::EthernetFrame frame;
          frame.dst = dst;
          frame.src = mac_;
          frame.ether_type = 0x5A7E;  // probe marker, passes through
          frame.payload.assign(payload_bytes, 0);
          for (int i = 0; i < 8; ++i) {
            frame.payload[static_cast<std::size_t>(i)] =
                static_cast<std::uint8_t>(seq >> (8 * (7 - i)));
          }
          const SimTime app_send = scheduler_.now();
          probe_sent_at_[seq] = app_send;
          const SimTime on_wire = app_send + jittered(timing_.app_tx_overhead) +
                                  timing_.nic_tx_latency;
          (void)link_->transmit(this, std::move(frame), on_wire);
        });
  }
}

}  // namespace zipline::sim
