#include "sim/testbed.hpp"

#include <algorithm>

#include "common/contracts.hpp"
#include "engine/engine.hpp"
#include "gd/packet.hpp"
#include "gd/transform.hpp"
#include "io/node.hpp"

namespace zipline::sim {

Testbed::Testbed(const TestbedConfig& config) {
  program_ = std::make_shared<prog::ZipLineProgram>(config.switch_config);
  if (config.hairpin) {
    program_->set_port_forward(1, 1);
  }
  auto model = std::make_shared<tofino::SwitchModel>("wedge100bf",
                                                     program_);
  switch_node_ = std::make_unique<SwitchNode>(events_, std::move(model));

  server1_ = std::make_unique<Host>(events_, net::MacAddress::local(1),
                                    config.host_timing, config.seed * 2 + 1);
  server2_ = std::make_unique<Host>(events_, net::MacAddress::local(2),
                                    config.host_timing, config.seed * 2 + 2);

  link1_ = std::make_unique<Link>(events_, config.link_gbps,
                                  config.propagation_delay);
  link2_ = std::make_unique<Link>(events_, config.link_gbps,
                                  config.propagation_delay);
  link1_->attach(server1_.get(), switch_node_->port_endpoint(1, link1_.get()));
  link2_->attach(server2_.get(), switch_node_->port_endpoint(2, link2_.get()));
  server1_->attach_link(link1_.get());
  server2_->attach_link(link2_.get());

  // The testbed has one switch handling both directions, so the encoder
  // and decoder programs are the same object (as in the paper's setup).
  controller_ = std::make_unique<prog::Controller>(
      events_, *program_, *program_, config.cp_timing, config.seed * 7 + 5);
  switch_node_->set_post_process_hook(
      [this] { controller_->poll_digests(); });
}

ThroughputResult run_throughput(prog::SwitchOp op, std::size_t frame_bytes,
                                SimTime duration, SimTime warmup,
                                std::uint64_t seed) {
  ZL_EXPECTS(frame_bytes >= net::kMinFrameBytes);
  TestbedConfig config;
  config.switch_config.op = op;
  config.seed = seed;
  Testbed bed(config);
  const auto& params = config.switch_config.params;

  // Payload size for this frame size. The 64 B row carries genuine GD
  // traffic: a 32 B chunk payload yields exactly a 64 B minimum frame.
  const std::size_t payload_bytes =
      frame_bytes == net::kMinFrameBytes
          ? params.raw_payload_bytes()
          : frame_bytes - net::kEthernetHeaderBytes - net::kEthernetFcsBytes;

  // Enough frames to outlast the window even at the 7 Mpkt/s CPU cap.
  const auto max_rate_pps = 1e9 / 143.0;
  const auto frames =
      static_cast<std::uint64_t>(to_seconds(duration) * max_rate_pps * 1.2) +
      1000;

  if (op == prog::SwitchOp::decode && payload_bytes == params.raw_payload_bytes()) {
    // Feed the decoder genuine type-2 packets (basis + syndrome), which it
    // restores to raw chunks. One pre-encoded buffer is retransmitted for
    // the whole stream, matching raw_ethernet_bw semantics.
    const gd::GdTransform transform(params);
    Rng rng(seed + 7);
    bits::BitVector chunk(params.chunk_bits);
    for (std::size_t b = 0; b < params.chunk_bits; ++b) {
      if (rng.next_bool(0.5)) chunk.set(b);
    }
    gd::TransformedChunk tc = transform.forward(chunk);
    const auto payload =
        gd::GdPacket::make_uncompressed(tc.syndrome, tc.excess, tc.basis)
            .serialize(params);
    bed.server1().start_stream(
        bed.server2().mac(), frames,
        [payload](std::uint64_t) { return payload; },
        [](std::uint64_t) {
          return gd::ether_type_for(gd::PacketType::uncompressed);
        },
        /*start_at=*/0);
  } else {
    // Chunk-sized payloads are tagged as ZipLine raw traffic (the encode
    // rows of Fig. 4 exercise the GD pipeline); anything larger is generic
    // Ethernet traffic that passes through, as on the real artifact.
    const std::uint16_t ether =
        payload_bytes == params.raw_payload_bytes() ? 0x5A01 : 0x0800;
    bed.server1().start_stream(bed.server2().mac(), frames, payload_bytes,
                               ether, /*start_at=*/0);
  }

  // Snapshot the sink at the warmup boundary, run to the end, diff.
  std::uint64_t frames_at_warmup = 0;
  std::uint64_t bytes_at_warmup = 0;
  bed.events().schedule(warmup, [&] {
    frames_at_warmup = bed.server2().sink().frames;
    bytes_at_warmup = bed.server2().sink().frame_bytes;
  });
  bed.events().run_until(warmup + duration);

  ThroughputResult result;
  result.frames = bed.server2().sink().frames - frames_at_warmup;
  const std::uint64_t bytes =
      bed.server2().sink().frame_bytes - bytes_at_warmup;
  result.mpps = static_cast<double>(result.frames) / to_seconds(duration) / 1e6;
  result.gbps = static_cast<double>(bytes) * 8.0 / to_seconds(duration) / 1e9;
  return result;
}

ThroughputResult run_batch_throughput(prog::SwitchOp op,
                                      std::size_t batch_chunks,
                                      SimTime duration, SimTime warmup,
                                      std::uint64_t seed,
                                      std::size_t stage_workers) {
  ZL_EXPECTS(batch_chunks >= 1);
  ZL_EXPECTS(stage_workers >= 1);
  TestbedConfig config;
  config.switch_config.op = op;
  config.seed = seed;
  Testbed bed(config);
  const auto& params = config.switch_config.params;

  // Stage the whole traffic once; the stream cycles it, so the per-frame
  // sender cost is a copy out of the arena rather than payload generation.
  // One chunk payload slice per stager worker (each its own flow).
  Rng rng(seed + 11);
  std::vector<std::vector<std::uint8_t>> slices(stage_workers);
  for (auto& slice : slices) {
    slice.resize(batch_chunks * params.raw_payload_bytes());
    for (auto& b : slice) b = static_cast<std::uint8_t>(rng.next_u64());
  }

  std::vector<engine::EncodeBatch> batches(stage_workers);
  if (op == prog::SwitchOp::decode) {
    // Feed the decoder genuine type-2 packets, staged through the Node
    // facade: one burst, one packet (= one unit, one flow) per stager
    // worker. The staging workers share ONE dictionary service (the
    // shared ownership mode) — the switch they feed holds a single
    // decode table per direction, so the staged flows must draw
    // identifiers from one consistent space, not from per-flow private
    // dictionaries that would collide on the wire.
    io::NodeOptions node_options;
    node_options.params = params;
    node_options.workers = stage_workers;
    node_options.ownership = engine::DictionaryOwnership::shared;
    node_options.steering = engine::FlowSteering::load_aware;
    node_options.work_stealing = stage_workers > 1;
    io::Node stager(node_options);
    io::Burst in;
    io::Burst out;
    for (std::size_t i = 0; i < stage_workers; ++i) {
      io::PacketMeta meta;
      meta.flow = static_cast<std::uint32_t>(i);
      in.append(gd::PacketType::raw, 0, 0, slices[i], meta);
    }
    stager.process(in, out);
    // The ordered drain delivers units (hence packets) in submission
    // order; the flow key rides the metadata, so each staged batch
    // rebuilds from its own slice's packets.
    for (std::size_t p = 0; p < out.size(); ++p) {
      const engine::PacketDesc& desc = out.desc(p);
      batches[out.meta(p).flow].append(desc.type, desc.syndrome,
                                       desc.basis_id, out.payload(p));
    }
  } else {
    // Raw chunk frames for the encode (and no-op) pipelines.
    for (std::size_t i = 0; i < stage_workers; ++i) {
      for (std::size_t c = 0; c < batch_chunks; ++c) {
        batches[i].append(
            gd::PacketType::raw, 0, 0,
            std::span(slices[i]).subspan(c * params.raw_payload_bytes(),
                                         params.raw_payload_bytes()));
      }
    }
  }

  const auto max_rate_pps = 1e9 / 143.0;
  const auto frames =
      static_cast<std::uint64_t>(to_seconds(duration) * max_rate_pps * 1.2) +
      1000;
  const std::uint64_t cycle = batch_chunks * stage_workers;
  bed.server1().start_batch_stream(bed.server2().mac(), batches,
                                   /*start_at=*/0,
                                   /*repeat=*/frames / cycle + 1);

  std::uint64_t frames_at_warmup = 0;
  std::uint64_t bytes_at_warmup = 0;
  bed.events().schedule(warmup, [&] {
    frames_at_warmup = bed.server2().sink().frames;
    bytes_at_warmup = bed.server2().sink().frame_bytes;
  });
  bed.events().run_until(warmup + duration);

  ThroughputResult result;
  result.frames = bed.server2().sink().frames - frames_at_warmup;
  const std::uint64_t bytes =
      bed.server2().sink().frame_bytes - bytes_at_warmup;
  result.mpps = static_cast<double>(result.frames) / to_seconds(duration) / 1e6;
  result.gbps = static_cast<double>(bytes) * 8.0 / to_seconds(duration) / 1e9;
  return result;
}

LatencyResult run_latency(prog::SwitchOp op, std::uint64_t probes,
                          std::uint64_t seed) {
  TestbedConfig config;
  config.switch_config.op = op;
  config.hairpin = true;
  config.seed = seed;
  Testbed bed(config);

  // raw_ethernet_lat-style pings: 46 B payloads (64 B frames). The payload
  // is deliberately not chunk-sized so the sequence number survives both
  // the encode and decode programs untouched — matching the utility's
  // arbitrary test payloads.
  bed.server1().start_probes(bed.server1().mac(), probes,
                             /*payload_bytes=*/46,
                             /*gap=*/100000 /* 100 us */, /*start_at=*/0);
  bed.events().run_until(static_cast<SimTime>(probes + 10) * 100000);

  LatencyResult result;
  result.samples_us.reserve(bed.server1().rtt_samples().size());
  for (const double ns : bed.server1().rtt_samples()) {
    result.samples_us.push_back(ns / 1e3);
  }
  result.rtt_us = summarize(result.samples_us);
  return result;
}

LearningResult run_learning(std::uint64_t repetitions,
                            const prog::ControlPlaneTiming& timing,
                            std::uint64_t seed) {
  LearningResult result;
  for (std::uint64_t rep = 0; rep < repetitions; ++rep) {
    TestbedConfig config;
    config.switch_config.op = prog::SwitchOp::encode;
    config.switch_config.learning = prog::LearningMode::control_plane;
    config.cp_timing = timing;
    config.seed = seed + rep * 1000;
    Testbed bed(config);
    const auto& params = config.switch_config.params;

    // One fixed chunk per repetition, replayed "as fast as possible" (§7).
    Rng rng(config.seed + 17);
    std::vector<std::uint8_t> payload(params.raw_payload_bytes());
    for (auto& b : payload) b = static_cast<std::uint8_t>(rng.next_u64());

    SimTime first_type2 = -1;
    SimTime first_type3 = -1;
    bed.server2().set_rx_tap([&](const net::EthernetFrame& frame,
                                 SimTime now) {
      if (!gd::is_zipline_ether_type(frame.ether_type)) return;
      const auto type = gd::packet_type_for_ether(frame.ether_type);
      if (type == gd::PacketType::uncompressed && first_type2 < 0) {
        first_type2 = now;
      }
      if (type == gd::PacketType::compressed && first_type3 < 0) {
        first_type3 = now;
      }
    });

    const std::uint64_t frames = 60000;  // ~8.6 ms at 7 Mpkt/s
    bed.server1().start_stream(
        bed.server2().mac(), frames,
        [payload](std::uint64_t) { return payload; },
        [](std::uint64_t) { return std::uint16_t{0x5A01}; }, /*start_at=*/0);
    bed.events().run_until(20_ms);

    ZL_ENSURES(first_type2 >= 0 && first_type3 >= 0 &&
               "learning did not complete; raise the frame budget");
    result.samples_ms.push_back(to_ms(first_type3 - first_type2));
  }
  result.learning_ms = summarize(result.samples_ms);
  return result;
}

}  // namespace zipline::sim
