// Binds a Tofino SwitchModel into the network: one LinkEndpoint per port,
// digest polling into the control plane after each packet, and egress
// transmission through the attached links.
#pragma once

#include <functional>
#include <memory>
#include <unordered_map>

#include "common/scheduler.hpp"
#include "sim/link.hpp"
#include "tofino/pipeline.hpp"

namespace zipline::sim {

class SwitchNode {
 public:
  SwitchNode(Scheduler& scheduler, std::shared_ptr<tofino::SwitchModel> model);

  /// Attaches `link` to switch `port`; returns the LinkEndpoint for that
  /// port (to be wired into Link::attach).
  [[nodiscard]] LinkEndpoint* port_endpoint(tofino::PortId port, Link* link);

  /// Invoked after every processed packet (digest polling hook).
  void set_post_process_hook(std::function<void()> hook) {
    post_process_ = std::move(hook);
  }

  [[nodiscard]] tofino::SwitchModel& model() noexcept { return *model_; }

 private:
  class PortEndpoint final : public LinkEndpoint {
   public:
    PortEndpoint(SwitchNode& owner, tofino::PortId port)
        : owner_(owner), port_(port) {}
    void on_frame(const net::EthernetFrame& frame, SimTime now) override {
      owner_.handle_frame(frame, port_, now);
    }

   private:
    SwitchNode& owner_;
    tofino::PortId port_;
  };

  void handle_frame(const net::EthernetFrame& frame, tofino::PortId port,
                    SimTime now);

  Scheduler& scheduler_;
  std::shared_ptr<tofino::SwitchModel> model_;
  std::unordered_map<tofino::PortId, std::unique_ptr<PortEndpoint>> endpoints_;
  std::unordered_map<tofino::PortId, Link*> links_;
  std::function<void()> post_process_;
};

}  // namespace zipline::sim
