// Trace replay harness for the compression experiment (Fig. 3).
//
// Replays a sequence of chunk payloads into an encode switch at a fixed
// packet rate, with the control plane running on the same virtual clock,
// and reads the per-class byte counters afterwards — the paper's own
// methodology ("we replay these traces to our switch and monitor which
// action ZipLine undertakes with the payload of each packet. We then
// deduce the payload size, as each action produces a packet type of a
// fixed size.").
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "sim/event_queue.hpp"
#include "zipline/controller.hpp"
#include "zipline/program.hpp"

namespace zipline::sim {

enum class TableMode : std::uint8_t {
  none,     ///< compression table stays empty (Fig. 3 "no table")
  static_,  ///< all bases preloaded (Fig. 3 "static table")
  dynamic,  ///< learned through the control plane (Fig. 3 "dynamic learning")
};

struct ReplayConfig {
  prog::ZipLineConfig switch_config;
  prog::ControlPlaneTiming cp_timing;
  TableMode table_mode = TableMode::dynamic;
  /// Replay rate in packets per second (pcap replay pacing).
  double replay_pps = 10000.0;
  std::uint64_t seed = 1;
};

struct ReplayResult {
  std::uint64_t packets = 0;
  std::uint64_t original_bytes = 0;  ///< sum of raw chunk payloads
  std::uint64_t output_bytes = 0;    ///< sum of produced payload sizes
  std::uint64_t type2_packets = 0;
  std::uint64_t type3_packets = 0;
  std::uint64_t passthrough_packets = 0;
  std::uint64_t bases_learned = 0;

  [[nodiscard]] double ratio() const {
    return original_bytes == 0 ? 1.0
                               : static_cast<double>(output_bytes) /
                                     static_cast<double>(original_bytes);
  }
};

class TraceReplay {
 public:
  explicit TraceReplay(const ReplayConfig& config);

  /// Replays the payload sequence; each payload is one packet.
  ReplayResult replay(std::span<const std::vector<std::uint8_t>> payloads);

  [[nodiscard]] prog::ZipLineProgram& program() noexcept { return *program_; }
  [[nodiscard]] prog::Controller& controller() noexcept { return *controller_; }

 private:
  ReplayConfig config_;
  EventQueue events_;
  std::shared_ptr<prog::ZipLineProgram> program_;
  std::unique_ptr<tofino::SwitchModel> model_;
  std::unique_ptr<prog::Controller> controller_;
};

}  // namespace zipline::sim
