#include "sim/link.hpp"

#include <algorithm>

namespace zipline::sim {

SimTime Link::transmit(LinkEndpoint* sender, net::EthernetFrame frame,
                       SimTime now) {
  ZL_EXPECTS(a_ != nullptr && b_ != nullptr);
  ZL_EXPECTS(sender == a_ || sender == b_);
  const bool from_a = sender == a_;
  SimTime& busy_until = from_a ? busy_until_ab_ : busy_until_ba_;
  LinkEndpoint* receiver = from_a ? b_ : a_;

  const auto serialization = static_cast<SimTime>(
      net::wire_time_ns(frame.frame_bytes(), gbps_));
  const SimTime start = std::max(now, busy_until);
  const SimTime done = start + serialization;
  busy_until = done;
  const SimTime delivery = done + propagation_;
  scheduler_.schedule(delivery,
                      [receiver, frame = std::move(frame), delivery] {
                        receiver->on_frame(frame, delivery);
                      });
  return done;
}

}  // namespace zipline::sim
