#include "sim/replay.hpp"

#include "common/contracts.hpp"
#include "gd/transform.hpp"

namespace zipline::sim {

TraceReplay::TraceReplay(const ReplayConfig& config) : config_(config) {
  prog::ZipLineConfig switch_config = config.switch_config;
  switch_config.op = prog::SwitchOp::encode;
  if (config.table_mode == TableMode::dynamic) {
    // Dynamic learning defaults to the paper's control-plane path; an
    // explicit data_plane setting selects the register ablation instead.
    if (switch_config.learning == prog::LearningMode::none) {
      switch_config.learning = prog::LearningMode::control_plane;
    }
  } else {
    switch_config.learning = prog::LearningMode::none;
  }
  program_ = std::make_shared<prog::ZipLineProgram>(switch_config);
  model_ = std::make_unique<tofino::SwitchModel>("replay", program_);
  controller_ = std::make_unique<prog::Controller>(
      events_, *program_, *program_, config.cp_timing, config.seed * 31 + 7);
}

ReplayResult TraceReplay::replay(
    std::span<const std::vector<std::uint8_t>> payloads) {
  ZL_EXPECTS(config_.replay_pps > 0);
  const auto& params = program_->config().params;

  if (config_.table_mode == TableMode::static_) {
    // Precompute the basis of every payload and install the mappings
    // before the replay starts (§7, case 2).
    const gd::GdTransform transform(params);
    for (const auto& payload : payloads) {
      if (payload.size() != params.raw_payload_bytes()) continue;
      const auto chunk =
          bits::BitVector::from_bytes(payload, params.chunk_bits);
      controller_->preload(transform.forward(chunk).basis);
    }
  }

  const auto gap = static_cast<SimTime>(1e9 / config_.replay_pps);
  ReplayResult result;
  SimTime t = 0;
  for (const auto& payload : payloads) {
    // Drain control-plane events due before this packet's arrival.
    events_.run_until(t);

    net::EthernetFrame frame;
    frame.dst = net::MacAddress::local(2);
    frame.src = net::MacAddress::local(1);
    frame.ether_type = 0x5A01;
    frame.payload = payload;
    (void)model_->process(frame, /*ingress_port=*/1, t);
    controller_->poll_digests();

    ++result.packets;
    t += gap;
  }
  // Let the control plane finish in-flight installs (bookkeeping only).
  events_.run_until(t + 10_ms);

  using prog::PacketClass;
  result.type2_packets = program_->class_packets(PacketClass::raw_to_type2);
  result.type3_packets = program_->class_packets(PacketClass::raw_to_type3);
  result.passthrough_packets =
      program_->class_packets(PacketClass::passthrough);
  // The baseline is the sum of the original chunks (paper §7); processed
  // packets each carried one raw chunk, passthrough packets their own size.
  result.original_bytes =
      (result.type2_packets + result.type3_packets) *
          params.raw_payload_bytes() +
      program_->class_bytes(PacketClass::passthrough);
  result.output_bytes = program_->class_bytes(PacketClass::raw_to_type2) +
                        program_->class_bytes(PacketClass::raw_to_type3) +
                        program_->class_bytes(PacketClass::passthrough);
  result.bases_learned = controller_->stats().mappings_installed;
  return result;
}

}  // namespace zipline::sim
