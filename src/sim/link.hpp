// Point-to-point full-duplex link with serialization and propagation
// delay. Models the 100 Gbit/s direct-attach connections of the paper's
// testbed, including per-frame preamble/SFD/IFG overhead.
#pragma once

#include <functional>

#include "common/contracts.hpp"
#include "common/scheduler.hpp"
#include "net/ethernet.hpp"

namespace zipline::sim {

/// Anything that can terminate a link: hosts and switch ports.
class LinkEndpoint {
 public:
  virtual ~LinkEndpoint() = default;
  virtual void on_frame(const net::EthernetFrame& frame, SimTime now) = 0;
};

class Link {
 public:
  Link(Scheduler& scheduler, double gbps, SimTime propagation_delay)
      : scheduler_(scheduler), gbps_(gbps), propagation_(propagation_delay) {
    ZL_EXPECTS(gbps > 0);
    ZL_EXPECTS(propagation_delay >= 0);
  }

  void attach(LinkEndpoint* a, LinkEndpoint* b) {
    ZL_EXPECTS(a != nullptr && b != nullptr);
    a_ = a;
    b_ = b;
  }

  /// Queues a frame from `sender` (must be an attached endpoint); returns
  /// the time at which the sender's side of the link becomes free again —
  /// the sender's natural pacing signal.
  SimTime transmit(LinkEndpoint* sender, net::EthernetFrame frame,
                   SimTime now);

  [[nodiscard]] double gbps() const noexcept { return gbps_; }

 private:
  Scheduler& scheduler_;
  double gbps_;
  SimTime propagation_;
  LinkEndpoint* a_ = nullptr;
  LinkEndpoint* b_ = nullptr;
  SimTime busy_until_ab_ = 0;
  SimTime busy_until_ba_ = 0;
};

}  // namespace zipline::sim
