#include "sim/switch_node.hpp"

#include "common/contracts.hpp"

namespace zipline::sim {

SwitchNode::SwitchNode(Scheduler& scheduler,
                       std::shared_ptr<tofino::SwitchModel> model)
    : scheduler_(scheduler), model_(std::move(model)) {
  ZL_EXPECTS(model_ != nullptr);
}

LinkEndpoint* SwitchNode::port_endpoint(tofino::PortId port, Link* link) {
  ZL_EXPECTS(link != nullptr);
  auto& endpoint = endpoints_[port];
  if (!endpoint) endpoint = std::make_unique<PortEndpoint>(*this, port);
  links_[port] = link;
  return endpoint.get();
}

void SwitchNode::handle_frame(const net::EthernetFrame& frame,
                              tofino::PortId port, SimTime now) {
  const tofino::ForwardResult result = model_->process(frame, port, now);
  if (post_process_) post_process_();
  if (result.dropped) return;
  const auto it = links_.find(result.egress_port);
  ZL_EXPECTS(it != links_.end() && "egress port has no attached link");
  Link* out_link = it->second;
  LinkEndpoint* out_endpoint = endpoints_[result.egress_port].get();
  scheduler_.schedule(result.ready_at,
                      [out_link, out_endpoint, frame = result.frame,
                       t = result.ready_at]() mutable {
                        (void)out_link->transmit(out_endpoint,
                                                 std::move(frame), t);
                      });
}

}  // namespace zipline::sim
