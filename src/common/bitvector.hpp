// Arbitrary-length bit vector in *polynomial order*.
//
// Bit index i corresponds to the coefficient of x^i in the paper's
// polynomial formulation (ZipLine §2): bit 0 is the least-significant bit
// b_0, bit (size-1) is the MSB b_{n-1}. Hamming codes have sizes such as
// 255 or 1023 bits that are never byte aligned (the paper's "lessons
// learned" §6), so all GD math happens on this type rather than on byte
// buffers.
//
// Wire order: when a BitVector is written to a byte stream, the MSB
// (highest power) is emitted first, matching how the chunk appears on the
// wire and how the CRC processes it.
#pragma once

#include <compare>
#include <cstddef>
#include <cstdint>
#include <span>
#include <string>
#include <string_view>
#include <vector>

namespace zipline::bits {

class BitVector {
 public:
  BitVector() = default;

  /// Creates a zeroed vector of `size` bits.
  explicit BitVector(std::size_t size);

  /// Creates a vector of `size` bits whose low 64 bits are `value`
  /// (remaining bits zero). Requires value to fit in `size` bits.
  BitVector(std::size_t size, std::uint64_t value);

  /// Parses a string of '0'/'1' written MSB-first ("1011" -> x^3+x+1).
  static BitVector from_string(std::string_view msb_first);

  /// Interprets bytes MSB-first: the first byte holds the highest powers.
  /// `size` may be any value <= 8 * bytes.size(); the *leading* bits of the
  /// first byte are skipped when size is not a multiple of 8, so that the
  /// final bit of the last byte is always bit 0.
  static BitVector from_bytes(std::span<const std::uint8_t> bytes,
                              std::size_t size);

  // --- in-place variants -----------------------------------------------
  // These resize this vector while reusing its word storage, so a scratch
  // BitVector stops allocating once it has grown to the working-set size.
  // They are what the batch engine's steady-state hot path runs on.

  /// Makes this an all-zero vector of `size` bits.
  void assign_zero(std::size_t size);

  /// In-place from_bytes with identical semantics.
  void assign_from_bytes(std::span<const std::uint8_t> bytes,
                         std::size_t size);

  /// In-place assignment from word storage (word 0 = low bits, the layout
  /// words() exposes). `words` must cover `size` bits; bits past `size`
  /// in the top word must be zero. This is the copy-out path of the
  /// shared dictionary's lock-free reads, which snapshot entry words from
  /// atomic storage before rebuilding the basis.
  void assign_from_words(std::span<const std::uint64_t> words,
                         std::size_t size);

  /// In-place slice: extracts bits [lo, lo+len) of this vector into `out`.
  void slice_into(std::size_t lo, std::size_t len, BitVector& out) const;

  /// ORs `v * x^shift` into this vector; v.size() + shift must fit.
  void accumulate_shifted(const BitVector& v, std::size_t shift);

  /// ORs the low `width` bits of `value` into positions [lo, lo+width).
  void or_uint(std::size_t lo, std::uint64_t value, std::size_t width);

  /// Appends the MSB-first serialization (what to_bytes returns) to `out`.
  void append_bytes_to(std::vector<std::uint8_t>& out) const;

  [[nodiscard]] std::size_t size() const noexcept { return size_; }
  [[nodiscard]] bool empty() const noexcept { return size_ == 0; }

  [[nodiscard]] bool get(std::size_t i) const;
  void set(std::size_t i, bool value = true);
  void reset(std::size_t i);
  void flip(std::size_t i);

  /// All-zero test.
  [[nodiscard]] bool none() const noexcept;
  [[nodiscard]] std::size_t popcount() const noexcept;

  /// XORs `other` into this vector. Sizes must match.
  BitVector& operator^=(const BitVector& other);
  [[nodiscard]] friend BitVector operator^(BitVector a, const BitVector& b) {
    a ^= b;
    return a;
  }

  /// Extracts bits [lo, lo+len) into a new vector (bit lo becomes bit 0).
  [[nodiscard]] BitVector slice(std::size_t lo, std::size_t len) const;

  /// Returns `high * x^(low.size()) + low`: `low` keeps its positions and
  /// `high` is shifted above it. Matches codeword = [basis | parity]
  /// concatenation in the GD transform.
  [[nodiscard]] static BitVector concat(const BitVector& high,
                                        const BitVector& low);

  /// Multiplies by x^count (shift towards higher powers), growing the size.
  [[nodiscard]] BitVector shifted_up(std::size_t count) const;

  /// Returns the low 64 bits as an integer. Requires size() <= 64.
  [[nodiscard]] std::uint64_t to_uint64() const;

  /// Serializes MSB-first; the result has ceil(size/8) bytes and unused
  /// leading bits of the first byte are zero. Inverse of from_bytes.
  [[nodiscard]] std::vector<std::uint8_t> to_bytes() const;

  /// MSB-first textual form, e.g. "1011".
  [[nodiscard]] std::string to_string() const;

  /// 64-bit FNV-1a style hash over content (size-sensitive).
  [[nodiscard]] std::uint64_t hash() const noexcept;

  friend bool operator==(const BitVector& a, const BitVector& b) noexcept {
    return a.size_ == b.size_ && a.words_ == b.words_;
  }

  /// Lexicographic-by-value ordering (for use as map keys).
  friend std::strong_ordering operator<=>(const BitVector& a,
                                          const BitVector& b) noexcept;

  /// Direct word access for performance-sensitive code (word 0 = low bits).
  [[nodiscard]] std::span<const std::uint64_t> words() const noexcept {
    return words_;
  }

  /// Mutable view of the low `count` whole words, for bulk fills by the
  /// bit-I/O fast paths. Requires count * 64 <= size(): only words fully
  /// below size() are exposed, so the trimmed-top-word invariant cannot
  /// be violated through this view.
  [[nodiscard]] std::span<std::uint64_t> low_words(std::size_t count);

 private:
  void trim_top_word() noexcept;

  std::size_t size_ = 0;
  std::vector<std::uint64_t> words_;  // word i holds bits [64i, 64i+64)
};

/// Hash functor so BitVector can key unordered containers.
struct BitVectorHash {
  std::size_t operator()(const BitVector& v) const noexcept {
    return static_cast<std::size_t>(v.hash());
  }
};

}  // namespace zipline::bits
