// Contract-checking helpers in the spirit of the C++ Core Guidelines
// (I.6 Expects / I.8 Ensures). Violations throw, so unit tests can assert
// on them and library misuse fails loudly instead of corrupting state.
#pragma once

#include <stdexcept>
#include <string>

namespace zipline {

/// Thrown when a precondition, postcondition or invariant is violated.
class ContractViolation : public std::logic_error {
 public:
  explicit ContractViolation(const std::string& what) : std::logic_error(what) {}
};

namespace detail {
[[noreturn]] inline void contract_fail(const char* kind, const char* expr,
                                       const char* file, int line) {
  throw ContractViolation(std::string(kind) + " failed: " + expr + " at " +
                          file + ":" + std::to_string(line));
}
}  // namespace detail

}  // namespace zipline

/// Precondition check; always on (cheap predicates only on hot paths).
#define ZL_EXPECTS(expr)                                                   \
  ((expr) ? static_cast<void>(0)                                           \
          : ::zipline::detail::contract_fail("precondition", #expr,       \
                                             __FILE__, __LINE__))

/// Postcondition check.
#define ZL_ENSURES(expr)                                                   \
  ((expr) ? static_cast<void>(0)                                           \
          : ::zipline::detail::contract_fail("postcondition", #expr,      \
                                             __FILE__, __LINE__))

/// Internal invariant check.
#define ZL_ASSERT(expr)                                                    \
  ((expr) ? static_cast<void>(0)                                           \
          : ::zipline::detail::contract_fail("invariant", #expr,          \
                                             __FILE__, __LINE__))
