// Runtime-dispatched SIMD kernel layer for the data-path inner loops.
//
// The largest per-chunk costs — the syndrome CRC contribution fold, the
// word-level bit packing behind BitWriter/BitReader, and the block
// slice/shift kernels behind the batched GD transform — are pure
// data-parallel byte/word shuffles with no loop-carried dependency, so they
// widen cleanly onto whatever vector unit the host has. This header is the
// seam: a `KernelTable` of function pointers, resolved ONCE per process
// (CPUID/auxval probe, overridable via the ZIPLINE_SIMD environment
// variable), that the hot loops call through.
//
// Contract (see src/common/README.md for the long form):
//   * Every kernel is byte-identical to the scalar reference at `scalar`
//     level — same outputs for all inputs, not merely "close". The GDZ1
//     wire format depends on it; tests/simd_kernel_test.cpp cross-checks
//     every level against scalar.
//   * Resolution order: ZIPLINE_SIMD env override (parsed, then clamped to
//     what the host supports) -> hardware probe -> scalar. An unrecognized
//     override value is ignored (the probe result is used). Requesting a
//     level above the host's capability clamps DOWN to the best supported
//     level, so CI can force every level name on any runner. The pre-clamp
//     request survives in requested() so stats can show a clamped request.
//   * A table may implement some slots at a lower level than its headline
//     `level` (e.g. the sse42 tier carries scalar block-shift kernels).
//     `slot_levels` records the honest per-slot provenance.
//   * The table is resolved on first use and never changes afterwards,
//     except through set_active_for_testing() (parity tests only).
#pragma once

#include <array>
#include <cstddef>
#include <cstdint>
#include <optional>
#include <string_view>

namespace zipline::simd {

/// Dispatch tiers, ordered by preference within an architecture. `sse42`,
/// `avx2` and `avx512` exist on x86-64, `neon` on aarch64; `scalar`
/// everywhere. Numeric order is clamp order on x86 (neon sits outside it).
enum class KernelLevel : std::uint8_t {
  scalar = 0,
  sse42 = 1,
  neon = 2,
  avx2 = 3,
  avx512 = 4,
};

/// Canonical lowercase name ("scalar", "sse42", "neon", "avx2", "avx512").
[[nodiscard]] std::string_view level_name(KernelLevel level) noexcept;

/// Inverse of level_name; nullopt for anything else (case-sensitive).
[[nodiscard]] std::optional<KernelLevel> parse_level(
    std::string_view name) noexcept;

/// Identifies one function-pointer slot of the KernelTable, in declaration
/// order — the index into KernelTable::slot_levels.
enum class KernelSlot : std::uint8_t {
  crc_fold = 0,
  crc_fold_multi = 1,
  pack_words = 2,
  unpack_words = 3,
  block_shr = 4,
  block_shl = 5,
};

inline constexpr std::size_t kKernelSlotCount = 6;

/// Canonical name of a kernel slot ("crc_fold", "block_shr", ...).
[[nodiscard]] std::string_view kernel_slot_name(KernelSlot slot) noexcept;

/// The resolved kernel set. All pointers are always non-null.
struct KernelTable {
  KernelLevel level;

  /// Syndrome-CRC fold over `groups` full 8-byte table groups: XORs
  /// tables[8g + j][byte j of words[g]] for every g < groups, j < 8.
  /// `tables` must point at 8 * groups contiguous 256-entry tables.
  std::uint32_t (*crc_fold)(const std::array<std::uint32_t, 256>* tables,
                            const std::uint64_t* words, std::size_t groups);

  /// Multi-stream fold over a word-plane of `count` rows, `stride` words
  /// apart: out[c] = crc_fold(tables, plane + c * stride, groups),
  /// overwriting out[0..count). The rows are independent XOR chains, so
  /// vector tiers interleave several per iteration — the table-load
  /// latency one serial chain cannot hide.
  void (*crc_fold_multi)(const std::array<std::uint32_t, 256>* tables,
                         const std::uint64_t* plane, std::size_t stride,
                         std::size_t groups, std::uint32_t* out,
                         std::size_t count);

  /// Wire-order bulk pack: dst[8j .. 8j+7] = big-endian bytes of
  /// words[n-1-j]. (BitVector word 0 holds the LOW powers, which are
  /// emitted LAST, hence the reversal.) dst must hold 8n bytes.
  void (*pack_words_be_rev)(std::uint8_t* dst, const std::uint64_t* words,
                            std::size_t n);

  /// Mirror of pack_words_be_rev: words[n-1-j] = big-endian load of
  /// src[8j .. 8j+7]. words must hold n entries.
  void (*unpack_words_be_rev)(std::uint64_t* words, const std::uint8_t* src,
                              std::size_t n);

  /// Block funnel shift right (the canonicalize slice: basis = word >> m)
  /// over `count` rows. For each row c (src + c*src_stride into
  /// dst + c*dst_stride) and each w < dst_words:
  ///   dst[w] = (src[w] >> shift) | (src[w+1] << (64 - shift))
  /// where src reads as 0 at and beyond src_words; then the top dst word
  /// is masked: dst[dst_words-1] &= top_mask. shift must be in (0, 64),
  /// dst_words >= 1. Rows may over-READ past src_words within the
  /// caller's allocation (vector tiers load whole rows); callers pad
  /// planes accordingly (see TransformBlockScratch).
  void (*block_shr)(std::uint64_t* dst, std::size_t dst_stride,
                    const std::uint64_t* src, std::size_t src_stride,
                    std::size_t count, unsigned shift, std::size_t src_words,
                    std::size_t dst_words, std::uint64_t top_mask);

  /// Block funnel shift left (the expand placement: word = basis << m),
  /// same row layout as block_shr. For each w < dst_words:
  ///   dst[w] = (src[w] << shift) | (src[w-1] >> (64 - shift))
  /// where src reads as 0 below 0 and at/beyond src_words; top dst word
  /// masked with top_mask. shift in (0, 64), dst_words >= 1.
  void (*block_shl)(std::uint64_t* dst, std::size_t dst_stride,
                    const std::uint64_t* src, std::size_t src_stride,
                    std::size_t count, unsigned shift, std::size_t src_words,
                    std::size_t dst_words, std::uint64_t top_mask);

  /// Honest per-slot provenance, indexed by KernelSlot: the level each
  /// slot's implementation actually belongs to. Equal to `level` for a
  /// fully-populated tier; lower where a tier borrows a simpler kernel
  /// (e.g. block shifts are scalar below avx512).
  std::array<KernelLevel, kKernelSlotCount> slot_levels;
};

/// Best level the hardware supports (ignores the env override).
[[nodiscard]] KernelLevel probe() noexcept;

/// Whether this host can run `level`'s kernels.
[[nodiscard]] bool supported(KernelLevel level) noexcept;

/// Kernel table for `level`, clamped down to the best supported level at
/// or below it (avx512 -> avx2 -> sse42 -> scalar; neon -> scalar off-ARM).
[[nodiscard]] const KernelTable& table_for(KernelLevel level) noexcept;

/// The process-wide active table: resolved once on first use from
/// ZIPLINE_SIMD (if set and parseable) else probe(). One acquire load.
[[nodiscard]] const KernelTable& active() noexcept;

/// Level of the active table — what NodeStats and bench JSON record.
[[nodiscard]] inline KernelLevel level() noexcept { return active().level; }

/// The level that was REQUESTED (env override if parseable, else the
/// hardware probe) before clamping. Differs from level() exactly when the
/// request exceeded host capability — how a clamped avx512 request stays
/// visible in stats instead of silently reading as avx2.
[[nodiscard]] KernelLevel requested() noexcept;

/// Test hook: swaps the active table (clamped like table_for) and returns
/// the previous level so parity suites can restore it. Also records
/// `level` as the requested level. Not for production code — the dispatch
/// is otherwise one-time-resolved.
KernelLevel set_active_for_testing(KernelLevel level) noexcept;

}  // namespace zipline::simd
