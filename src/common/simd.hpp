// Runtime-dispatched SIMD kernel layer for the data-path inner loops.
//
// The two largest per-chunk costs — the syndrome CRC contribution fold and
// the word-level bit packing behind BitWriter/BitReader — are pure
// data-parallel byte/word shuffles with no loop-carried dependency, so they
// widen cleanly onto whatever vector unit the host has. This header is the
// seam: a `KernelTable` of function pointers, resolved ONCE per process
// (CPUID/auxval probe, overridable via the ZIPLINE_SIMD environment
// variable), that the hot loops call through.
//
// Contract (see src/common/README.md for the long form):
//   * Every kernel is byte-identical to the scalar reference at `scalar`
//     level — same outputs for all inputs, not merely "close". The GDZ1
//     wire format depends on it; tests/simd_kernel_test.cpp cross-checks
//     every level against scalar.
//   * Resolution order: ZIPLINE_SIMD env override (parsed, then clamped to
//     what the host supports) -> hardware probe -> scalar. An unrecognized
//     override value is ignored (the probe result is used). Requesting a
//     level above the host's capability clamps DOWN to the best supported
//     level, so CI can force every level name on any runner.
//   * The table is resolved on first use and never changes afterwards,
//     except through set_active_for_testing() (parity tests only).
#pragma once

#include <array>
#include <cstddef>
#include <cstdint>
#include <optional>
#include <string_view>

namespace zipline::simd {

/// Dispatch tiers, ordered by preference within an architecture. `sse42`
/// and `avx2` exist on x86-64, `neon` on aarch64; `scalar` everywhere.
enum class KernelLevel : std::uint8_t { scalar = 0, sse42 = 1, neon = 2, avx2 = 3 };

/// Canonical lowercase name ("scalar", "sse42", "neon", "avx2").
[[nodiscard]] std::string_view level_name(KernelLevel level) noexcept;

/// Inverse of level_name; nullopt for anything else (case-sensitive).
[[nodiscard]] std::optional<KernelLevel> parse_level(
    std::string_view name) noexcept;

/// The resolved kernel set. All pointers are always non-null.
struct KernelTable {
  KernelLevel level;

  /// Syndrome-CRC fold over `groups` full 8-byte table groups: XORs
  /// tables[8g + j][byte j of words[g]] for every g < groups, j < 8.
  /// `tables` must point at 8 * groups contiguous 256-entry tables.
  std::uint32_t (*crc_fold)(const std::array<std::uint32_t, 256>* tables,
                            const std::uint64_t* words, std::size_t groups);

  /// Wire-order bulk pack: dst[8j .. 8j+7] = big-endian bytes of
  /// words[n-1-j]. (BitVector word 0 holds the LOW powers, which are
  /// emitted LAST, hence the reversal.) dst must hold 8n bytes.
  void (*pack_words_be_rev)(std::uint8_t* dst, const std::uint64_t* words,
                            std::size_t n);

  /// Mirror of pack_words_be_rev: words[n-1-j] = big-endian load of
  /// src[8j .. 8j+7]. words must hold n entries.
  void (*unpack_words_be_rev)(std::uint64_t* words, const std::uint8_t* src,
                              std::size_t n);
};

/// Best level the hardware supports (ignores the env override).
[[nodiscard]] KernelLevel probe() noexcept;

/// Whether this host can run `level`'s kernels.
[[nodiscard]] bool supported(KernelLevel level) noexcept;

/// Kernel table for `level`, clamped down to the best supported level at
/// or below it (avx2 -> sse42 -> scalar; neon -> scalar off-ARM).
[[nodiscard]] const KernelTable& table_for(KernelLevel level) noexcept;

/// The process-wide active table: resolved once on first use from
/// ZIPLINE_SIMD (if set and parseable) else probe(). One acquire load.
[[nodiscard]] const KernelTable& active() noexcept;

/// Level of the active table — what NodeStats and bench JSON record.
[[nodiscard]] inline KernelLevel level() noexcept { return active().level; }

/// Test hook: swaps the active table (clamped like table_for) and returns
/// the previous level so parity suites can restore it. Not for production
/// code — the dispatch is otherwise one-time-resolved.
KernelLevel set_active_for_testing(KernelLevel level) noexcept;

}  // namespace zipline::simd
