#include "common/bitio.hpp"

#include "common/contracts.hpp"

namespace zipline::bits {

void BitWriter::push_bit(bool b) {
  const std::size_t bit_in_byte = bit_count_ % 8;
  if (bit_in_byte == 0) bytes_.push_back(0);
  if (b) {
    bytes_.back() |= static_cast<std::uint8_t>(1u << (7 - bit_in_byte));
  }
  ++bit_count_;
}

void BitWriter::write_uint(std::uint64_t value, std::size_t width) {
  ZL_EXPECTS(width <= 64);
  ZL_EXPECTS(width == 64 || value < (std::uint64_t{1} << width));
  for (std::size_t i = width; i-- > 0;) {
    push_bit((value >> i) & 1);
  }
}

void BitWriter::write_bits(const BitVector& v) {
  for (std::size_t i = v.size(); i-- > 0;) {
    push_bit(v.get(i));
  }
}

void BitWriter::align_to_byte() {
  while (bit_count_ % 8 != 0) push_bit(false);
}

void BitWriter::write_padding(std::size_t count) {
  for (std::size_t i = 0; i < count; ++i) push_bit(false);
}

std::vector<std::uint8_t> BitWriter::to_bytes() const { return bytes_; }

bool BitReader::next_bit() {
  ZL_EXPECTS(pos_ < bytes_.size() * 8);
  const std::uint8_t byte = bytes_[pos_ / 8];
  const bool b = (byte >> (7 - pos_ % 8)) & 1;
  ++pos_;
  return b;
}

std::uint64_t BitReader::read_uint(std::size_t width) {
  ZL_EXPECTS(width <= 64);
  std::uint64_t value = 0;
  for (std::size_t i = 0; i < width; ++i) {
    value = (value << 1) | static_cast<std::uint64_t>(next_bit());
  }
  return value;
}

BitVector BitReader::read_bits(std::size_t count) {
  BitVector v(count);
  for (std::size_t i = count; i-- > 0;) {
    if (next_bit()) v.set(i);
  }
  return v;
}

void BitReader::skip(std::size_t count) {
  ZL_EXPECTS(pos_ + count <= bytes_.size() * 8);
  pos_ += count;
}

}  // namespace zipline::bits
