#include "common/bitio.hpp"

#include <algorithm>

#include "common/contracts.hpp"

namespace zipline::bits {

void BitWriter::push_bit(bool b) {
  const std::size_t bit_in_byte = bit_count_ % 8;
  if (bit_in_byte == 0) bytes_.push_back(0);
  if (b) {
    bytes_.back() |= static_cast<std::uint8_t>(1u << (7 - bit_in_byte));
  }
  ++bit_count_;
}

void BitWriter::write_uint(std::uint64_t value, std::size_t width) {
  ZL_EXPECTS(width <= 64);
  ZL_EXPECTS(width == 64 || value < (std::uint64_t{1} << width));
  // Byte-at-a-time: fill the open partial byte, then whole bytes. This is
  // the engine's serialization inner loop.
  std::size_t remaining = width;
  while (remaining > 0) {
    const std::size_t bit_in_byte = bit_count_ % 8;
    if (bit_in_byte == 0) bytes_.push_back(0);
    const std::size_t take = std::min<std::size_t>(8 - bit_in_byte, remaining);
    const std::uint64_t chunk =
        (value >> (remaining - take)) & ((std::uint64_t{1} << take) - 1);
    bytes_.back() |=
        static_cast<std::uint8_t>(chunk << (8 - bit_in_byte - take));
    bit_count_ += take;
    remaining -= take;
  }
}

void BitWriter::write_bits(const BitVector& v) {
  // MSB-first over the vector, one word segment at a time. The top
  // segment aligns the remainder to word boundaries, so every later
  // segment is a full word.
  const auto words = v.words();
  std::size_t i = v.size();
  while (i > 0) {
    const std::size_t take = (i % 64 != 0) ? i % 64 : 64;
    const std::uint64_t word = words[(i - take) / 64];
    write_uint(take == 64 ? word : word & ((std::uint64_t{1} << take) - 1),
               take);
    i -= take;
  }
}

void BitWriter::align_to_byte() {
  while (bit_count_ % 8 != 0) push_bit(false);
}

void BitWriter::write_padding(std::size_t count) {
  for (std::size_t i = 0; i < count; ++i) push_bit(false);
}

std::vector<std::uint8_t> BitWriter::to_bytes() const { return bytes_; }

bool BitReader::next_bit() {
  ZL_EXPECTS(pos_ < bytes_.size() * 8);
  const std::uint8_t byte = bytes_[pos_ / 8];
  const bool b = (byte >> (7 - pos_ % 8)) & 1;
  ++pos_;
  return b;
}

std::uint64_t BitReader::read_uint(std::size_t width) {
  ZL_EXPECTS(width <= 64);
  ZL_EXPECTS(pos_ + width <= bytes_.size() * 8);
  std::uint64_t value = 0;
  std::size_t remaining = width;
  while (remaining > 0) {
    const std::size_t bit_in_byte = pos_ % 8;
    const std::size_t take = std::min<std::size_t>(8 - bit_in_byte, remaining);
    const std::uint64_t chunk =
        (static_cast<std::uint64_t>(bytes_[pos_ / 8]) >>
         (8 - bit_in_byte - take)) &
        ((std::uint64_t{1} << take) - 1);
    value = (value << take) | chunk;
    pos_ += take;
    remaining -= take;
  }
  return value;
}

BitVector BitReader::read_bits(std::size_t count) {
  BitVector v;
  read_bits_into(count, v);
  return v;
}

void BitReader::read_bits_into(std::size_t count, BitVector& out) {
  out.assign_zero(count);
  // Mirror of BitWriter::write_bits: top partial word first, then full
  // words, each landing on a word boundary of `out`.
  std::size_t i = count;
  while (i > 0) {
    const std::size_t take = (i % 64 != 0) ? i % 64 : 64;
    out.or_uint(i - take, read_uint(take), take);
    i -= take;
  }
}

void BitReader::skip(std::size_t count) {
  ZL_EXPECTS(pos_ + count <= bytes_.size() * 8);
  pos_ += count;
}

}  // namespace zipline::bits
