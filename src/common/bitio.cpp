#include "common/bitio.hpp"

#include <cstring>

#include "common/contracts.hpp"
#include "common/simd.hpp"

namespace zipline::bits {

namespace {

/// Stores the top `nbytes` bytes of `staged` (a top-aligned bit pattern)
/// at dst, most-significant byte first. nbytes <= 8.
inline void store_be_top(std::uint8_t* dst, std::uint64_t staged,
                         std::size_t nbytes) {
  const std::uint64_t be = __builtin_bswap64(staged);
  std::memcpy(dst, &be, nbytes);
}

/// Loads `nbytes` bytes MSB-first into the TOP of a 64-bit word (the
/// remaining low bits are zero). nbytes <= 8.
inline std::uint64_t load_be_top(const std::uint8_t* src, std::size_t nbytes) {
  std::uint64_t v = 0;
  std::memcpy(&v, src, nbytes);
  return __builtin_bswap64(v);
}

inline std::uint64_t low_mask(std::size_t width) {
  return width == 64 ? ~std::uint64_t{0}
                     : (std::uint64_t{1} << width) - 1;
}

}  // namespace

void BitWriter::write_uint(std::uint64_t value, std::size_t width) {
  ZL_EXPECTS(width <= 64);
  ZL_EXPECTS(width == 64 || value < (std::uint64_t{1} << width));
  if (width == 0) return;
  // Word-level packing: stage the open partial byte's bits (if any) above
  // the value in one top-aligned 64-bit accumulator and store it back with
  // at most two word-width writes — the field spans at most 9 bytes. The
  // invariant that bits past bit_count_ in the last byte are zero is
  // preserved (the staged word is zero-padded, resize() zero-fills), which
  // is what keeps bytes()/align_to_byte()/write_padding() loop-free.
  const std::size_t bit_off = bit_count_ % 8;
  const std::size_t byte_pos = bit_count_ / 8;
  const std::size_t total = bit_off + width;
  bytes_.resize((bit_count_ + width + 7) / 8);
  std::uint8_t* dst = bytes_.data() + byte_pos;
  if (total <= 64) {
    std::uint64_t staged = value << (64 - total);
    if (bit_off != 0) staged |= static_cast<std::uint64_t>(*dst) << 56;
    store_be_top(dst, staged, (total + 7) / 8);
  } else {
    // 65..71 bits: the first 64 as one store, the remainder (1..7 bits)
    // as the final zero-padded byte.
    const std::size_t rem = total - 64;
    std::uint64_t staged = (value >> rem) |
                           (static_cast<std::uint64_t>(*dst) << 56);
    store_be_top(dst, staged, 8);
    dst[8] = static_cast<std::uint8_t>((value & low_mask(rem)) << (8 - rem));
  }
  bit_count_ += width;
}

void BitWriter::write_bits(const BitVector& v) {
  // MSB-first over the vector: the top (possibly partial) word aligns the
  // remainder to word boundaries; the full words below it go through the
  // dispatch kernel's bulk byteswap-copy when the stream is byte aligned,
  // or word-at-a-time write_uint otherwise.
  const auto words = v.words();
  std::size_t i = v.size();
  if (i == 0) return;
  const std::size_t top = (i % 64 != 0) ? i % 64 : 64;
  const std::uint64_t top_word = words[(i - top) / 64];
  write_uint(top == 64 ? top_word : top_word & low_mask(top), top);
  i -= top;
  const std::size_t full = i / 64;
  if (full == 0) return;
  if (bit_count_ % 8 == 0) {
    const std::size_t start = bytes_.size();
    bytes_.resize(start + full * 8);
    simd::active().pack_words_be_rev(bytes_.data() + start, words.data(),
                                     full);
    bit_count_ += full * 64;
  } else {
    for (std::size_t w = full; w-- > 0;) write_uint(words[w], 64);
  }
}

void BitWriter::align_to_byte() {
  // Bits past bit_count_ in the open byte are already zero by invariant,
  // so alignment is pure arithmetic — no per-bit loop.
  bit_count_ = (bit_count_ + 7) & ~std::size_t{7};
}

void BitWriter::write_padding(std::size_t count) {
  // Zero padding only needs the buffer extended: resize() zero-fills the
  // new bytes and the open byte's tail is already zero.
  bit_count_ += count;
  bytes_.resize((bit_count_ + 7) / 8);
}

std::vector<std::uint8_t> BitWriter::to_bytes() const { return bytes_; }

std::uint64_t BitReader::read_uint(std::size_t width) {
  ZL_EXPECTS(width <= 64);
  ZL_EXPECTS(pos_ + width <= bytes_.size() * 8);
  if (width == 0) return 0;
  // Mirror of BitWriter::write_uint: the field spans at most 9 bytes, so
  // one top-aligned load (plus a second single-byte load when it spills
  // past 64 staged bits) replaces the byte-at-a-time loop.
  const std::size_t bit_off = pos_ % 8;
  const std::size_t total = bit_off + width;
  const std::uint8_t* src = bytes_.data() + pos_ / 8;
  pos_ += width;
  if (total <= 64) {
    const std::uint64_t staged = load_be_top(src, (total + 7) / 8);
    return (staged >> (64 - total)) & low_mask(width);
  }
  const std::size_t rem = total - 64;
  const std::uint64_t staged = load_be_top(src, 8);
  const std::uint64_t high = staged & low_mask(64 - bit_off);
  const std::uint64_t low = static_cast<std::uint64_t>(src[8]) >> (8 - rem);
  return (high << rem) | low;
}

BitVector BitReader::read_bits(std::size_t count) {
  BitVector v;
  read_bits_into(count, v);
  return v;
}

void BitReader::read_bits_into(std::size_t count, BitVector& out) {
  out.assign_zero(count);
  if (count == 0) return;
  // Mirror of BitWriter::write_bits: top partial word first, then the
  // full words — bulk byteswap-copied through the dispatch kernel when
  // byte aligned, word-at-a-time otherwise.
  std::size_t i = count;
  const std::size_t top = (i % 64 != 0) ? i % 64 : 64;
  out.or_uint(i - top, read_uint(top), top);
  i -= top;
  const std::size_t full = i / 64;
  if (full == 0) return;
  ZL_EXPECTS(pos_ + full * 64 <= bytes_.size() * 8);
  if (pos_ % 8 == 0) {
    simd::active().unpack_words_be_rev(out.low_words(full).data(),
                                       bytes_.data() + pos_ / 8, full);
    pos_ += full * 64;
  } else {
    for (std::size_t w = full; w-- > 0;) {
      out.or_uint(w * 64, read_uint(64), 64);
    }
  }
}

void BitReader::skip(std::size_t count) {
  ZL_EXPECTS(pos_ + count <= bytes_.size() * 8);
  pos_ += count;
}

}  // namespace zipline::bits
