// Formatting helpers for diagnostics and benchmark output.
#pragma once

#include <cstdint>
#include <span>
#include <string>

namespace zipline {

/// "de ad be ef"-style hex string.
std::string hex_string(std::span<const std::uint8_t> bytes);

/// Classic 16-bytes-per-row hexdump with offsets and ASCII gutter.
std::string hexdump(std::span<const std::uint8_t> bytes);

/// Human-readable byte size, e.g. "1.5 MB" (SI powers of 10, as the paper's
/// figure axes use MB).
std::string format_size(double bytes);

/// Fixed-point ratio like "0.09".
std::string format_ratio(double ratio, int decimals = 2);

}  // namespace zipline
