#include "common/bitvector.hpp"

#include <algorithm>
#include <bit>

#include "common/contracts.hpp"

namespace zipline::bits {

namespace {
constexpr std::size_t kWordBits = 64;

std::size_t words_for(std::size_t bits) {
  return (bits + kWordBits - 1) / kWordBits;
}
}  // namespace

BitVector::BitVector(std::size_t size)
    : size_(size), words_(words_for(size), 0) {}

BitVector::BitVector(std::size_t size, std::uint64_t value) : BitVector(size) {
  ZL_EXPECTS(size >= kWordBits || value < (std::uint64_t{1} << size) ||
             size == 0);
  if (!words_.empty()) {
    words_[0] = value;
    trim_top_word();
    ZL_EXPECTS(words_[0] == value);  // value must fit
  } else {
    ZL_EXPECTS(value == 0);
  }
}

BitVector BitVector::from_string(std::string_view msb_first) {
  BitVector v(msb_first.size());
  for (std::size_t i = 0; i < msb_first.size(); ++i) {
    const char c = msb_first[i];
    ZL_EXPECTS(c == '0' || c == '1');
    if (c == '1') v.set(msb_first.size() - 1 - i);
  }
  return v;
}

BitVector BitVector::from_bytes(std::span<const std::uint8_t> bytes,
                                std::size_t size) {
  BitVector v;
  v.assign_from_bytes(bytes, size);
  return v;
}

void BitVector::assign_zero(std::size_t size) {
  size_ = size;
  words_.assign(words_for(size), 0);
}

void BitVector::assign_from_bytes(std::span<const std::uint8_t> bytes,
                                  std::size_t size) {
  ZL_EXPECTS(size <= bytes.size() * 8);
  assign_zero(size);
  // The final bit of the last byte is bit 0; walk backwards, a byte at a
  // time (this is the batch engine's chunk-staging loop — keep it off the
  // per-bit path). `bit` advances in steps of 8 from 0, so a byte never
  // straddles a word boundary.
  std::size_t bit = 0;
  for (std::size_t byte_idx = bytes.size(); byte_idx-- > 0 && bit < size;) {
    const std::size_t remaining = size - bit;
    const std::uint64_t b =
        remaining >= 8 ? bytes[byte_idx]
                       : bytes[byte_idx] &
                             ((std::uint64_t{1} << remaining) - 1);
    words_[bit / kWordBits] |= b << (bit % kWordBits);
    bit += 8;
  }
}

void BitVector::assign_from_words(std::span<const std::uint64_t> words,
                                  std::size_t size) {
  ZL_EXPECTS(size <= words.size() * kWordBits);
  size_ = size;
  const std::size_t count = words_for(size);
  words_.resize(count);
  std::copy(words.begin(), words.begin() + static_cast<std::ptrdiff_t>(count),
            words_.begin());
  trim_top_word();
}

std::span<std::uint64_t> BitVector::low_words(std::size_t count) {
  ZL_EXPECTS(count * kWordBits <= size_);
  return {words_.data(), count};
}

bool BitVector::get(std::size_t i) const {
  ZL_EXPECTS(i < size_);
  return (words_[i / kWordBits] >> (i % kWordBits)) & 1;
}

void BitVector::set(std::size_t i, bool value) {
  ZL_EXPECTS(i < size_);
  const std::uint64_t mask = std::uint64_t{1} << (i % kWordBits);
  if (value) {
    words_[i / kWordBits] |= mask;
  } else {
    words_[i / kWordBits] &= ~mask;
  }
}

void BitVector::reset(std::size_t i) { set(i, false); }

void BitVector::flip(std::size_t i) {
  ZL_EXPECTS(i < size_);
  words_[i / kWordBits] ^= std::uint64_t{1} << (i % kWordBits);
}

bool BitVector::none() const noexcept {
  return std::all_of(words_.begin(), words_.end(),
                     [](std::uint64_t w) { return w == 0; });
}

std::size_t BitVector::popcount() const noexcept {
  std::size_t total = 0;
  for (const std::uint64_t w : words_) total += std::popcount(w);
  return total;
}

BitVector& BitVector::operator^=(const BitVector& other) {
  ZL_EXPECTS(size_ == other.size_);
  for (std::size_t i = 0; i < words_.size(); ++i) words_[i] ^= other.words_[i];
  return *this;
}

BitVector BitVector::slice(std::size_t lo, std::size_t len) const {
  BitVector out;
  slice_into(lo, len, out);
  return out;
}

void BitVector::slice_into(std::size_t lo, std::size_t len,
                           BitVector& out) const {
  ZL_EXPECTS(lo + len <= size_);
  ZL_EXPECTS(&out != this);
  out.assign_zero(len);
  const std::size_t shift = lo % kWordBits;
  const std::size_t base = lo / kWordBits;
  for (std::size_t w = 0; w < out.words_.size(); ++w) {
    std::uint64_t value = words_[base + w] >> shift;
    if (shift != 0 && base + w + 1 < words_.size()) {
      value |= words_[base + w + 1] << (kWordBits - shift);
    }
    out.words_[w] = value;
  }
  out.trim_top_word();
}

void BitVector::accumulate_shifted(const BitVector& v, std::size_t shift) {
  ZL_EXPECTS(v.size_ + shift <= size_);
  const std::size_t s = shift % kWordBits;
  const std::size_t base = shift / kWordBits;
  for (std::size_t w = 0; w < v.words_.size(); ++w) {
    words_[base + w] |= v.words_[w] << s;
    if (s != 0 && base + w + 1 < words_.size()) {
      words_[base + w + 1] |= v.words_[w] >> (kWordBits - s);
    }
  }
}

BitVector BitVector::concat(const BitVector& high, const BitVector& low) {
  BitVector out(high.size_ + low.size_);
  out.words_ = low.words_;
  out.words_.resize(words_for(out.size_), 0);
  const std::size_t shift = low.size_ % kWordBits;
  const std::size_t base = low.size_ / kWordBits;
  for (std::size_t w = 0; w < high.words_.size(); ++w) {
    out.words_[base + w] |= high.words_[w] << shift;
    if (shift != 0 && base + w + 1 < out.words_.size()) {
      out.words_[base + w + 1] |= high.words_[w] >> (kWordBits - shift);
    }
  }
  out.trim_top_word();
  return out;
}

BitVector BitVector::shifted_up(std::size_t count) const {
  return concat(*this, BitVector(count));
}

std::uint64_t BitVector::to_uint64() const {
  ZL_EXPECTS(size_ <= 64);
  return words_.empty() ? 0 : words_[0];
}

std::vector<std::uint8_t> BitVector::to_bytes() const {
  std::vector<std::uint8_t> out;
  out.reserve((size_ + 7) / 8);
  append_bytes_to(out);
  return out;
}

void BitVector::append_bytes_to(std::vector<std::uint8_t>& out) const {
  const std::size_t start = out.size();
  out.resize(start + (size_ + 7) / 8, 0);
  // `bit` advances in steps of 8 from 0, so a byte never straddles a word.
  std::size_t bit = 0;
  for (std::size_t byte_idx = out.size(); byte_idx-- > start && bit < size_;) {
    out[byte_idx] = static_cast<std::uint8_t>(
        (words_[bit / kWordBits] >> (bit % kWordBits)) & 0xFF);
    bit += 8;
  }
}

void BitVector::or_uint(std::size_t lo, std::uint64_t value,
                        std::size_t width) {
  ZL_EXPECTS(lo + width <= size_);
  ZL_EXPECTS(width <= kWordBits);
  ZL_EXPECTS(width == kWordBits || value < (std::uint64_t{1} << width));
  if (width == 0) return;
  const std::size_t word = lo / kWordBits;
  const std::size_t off = lo % kWordBits;
  words_[word] |= value << off;
  if (off != 0 && off + width > kWordBits) {
    words_[word + 1] |= value >> (kWordBits - off);
  }
}

std::string BitVector::to_string() const {
  std::string s;
  s.reserve(size_);
  for (std::size_t i = size_; i-- > 0;) s.push_back(get(i) ? '1' : '0');
  return s;
}

std::uint64_t BitVector::hash() const noexcept {
  std::uint64_t h = 1469598103934665603ull ^ size_;
  for (const std::uint64_t w : words_) {
    h ^= w;
    h *= 1099511628211ull;
    h ^= h >> 32;
  }
  return h;
}

std::strong_ordering operator<=>(const BitVector& a,
                                 const BitVector& b) noexcept {
  if (a.size_ != b.size_) return a.size_ <=> b.size_;
  for (std::size_t i = a.words_.size(); i-- > 0;) {
    if (a.words_[i] != b.words_[i]) return a.words_[i] <=> b.words_[i];
  }
  return std::strong_ordering::equal;
}

void BitVector::trim_top_word() noexcept {
  const std::size_t used = size_ % kWordBits;
  if (used != 0 && !words_.empty()) {
    words_.back() &= (std::uint64_t{1} << used) - 1;
  }
}

}  // namespace zipline::bits
