// MSB-first bit-stream writer/reader over byte buffers.
//
// ZipLine packet payloads pack fields that are not byte aligned (syndrome,
// basis, identifiers). Fields are written most-significant-bit first, in
// field order, exactly as a P4 deparser would emit consecutive header
// fields. Readers consume in the same order.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "common/bitvector.hpp"

namespace zipline::bits {

class BitWriter {
 public:
  /// Appends the low `width` bits of `value`, MSB first. width <= 64.
  void write_uint(std::uint64_t value, std::size_t width);

  /// Appends a whole bit vector, MSB (highest power) first.
  void write_bits(const BitVector& v);

  /// Appends zero bits until the stream is byte aligned.
  void align_to_byte();

  /// Appends `count` zero padding bits.
  void write_padding(std::size_t count);

  [[nodiscard]] std::size_t bit_count() const noexcept { return bit_count_; }

  /// Clears the stream for reuse while keeping the buffer's capacity — a
  /// writer owned by a long-lived encoder stops allocating after warmup.
  void reset() noexcept {
    bytes_.clear();
    bit_count_ = 0;
  }

  /// View of the bytes written so far; a trailing partial byte is already
  /// zero-padded on the right. Invalidated by further writes.
  [[nodiscard]] std::span<const std::uint8_t> bytes() const noexcept {
    return bytes_;
  }

  /// Finalizes to bytes; a trailing partial byte is zero-padded on the
  /// right (low-order side of the final byte).
  [[nodiscard]] std::vector<std::uint8_t> to_bytes() const;

 private:
  // Invariant: bytes_ holds exactly ceil(bit_count_ / 8) bytes and every
  // bit past bit_count_ in the final byte is zero. write_uint maintains it
  // with word-level stores, which is what makes bytes() always valid and
  // align_to_byte()/write_padding() loop-free.
  std::vector<std::uint8_t> bytes_;
  std::size_t bit_count_ = 0;
};

class BitReader {
 public:
  explicit BitReader(std::span<const std::uint8_t> bytes) : bytes_(bytes) {}

  /// Reads `width` bits MSB-first into the low bits of the result.
  [[nodiscard]] std::uint64_t read_uint(std::size_t width);

  /// Reads `count` bits into a BitVector (first bit read = highest power).
  [[nodiscard]] BitVector read_bits(std::size_t count);

  /// In-place read_bits: fills `out`, reusing its storage.
  void read_bits_into(std::size_t count, BitVector& out);

  /// Skips `count` bits.
  void skip(std::size_t count);

  [[nodiscard]] std::size_t bits_consumed() const noexcept { return pos_; }
  [[nodiscard]] std::size_t bits_remaining() const noexcept {
    return bytes_.size() * 8 - pos_;
  }

 private:
  std::span<const std::uint8_t> bytes_;
  std::size_t pos_ = 0;  // absolute bit position, MSB of byte 0 is 0
};

}  // namespace zipline::bits
