// Deterministic pseudo-random number generation (xoshiro256**).
//
// All workload generators and the discrete-event simulator draw from this
// engine so experiments are reproducible bit-for-bit across platforms and
// standard-library implementations (std::uniform_* distributions are not
// portable across vendors).
#pragma once

#include <cmath>
#include <cstddef>
#include <cstdint>
#include <numbers>
#include <vector>

#include "common/contracts.hpp"

namespace zipline {

class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0x5eed5eed5eed5eedULL) {
    // splitmix64 expansion of the seed into the xoshiro state.
    std::uint64_t x = seed;
    for (auto& word : state_) {
      x += 0x9e3779b97f4a7c15ULL;
      std::uint64_t z = x;
      z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
      z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
      word = z ^ (z >> 31);
    }
  }

  /// Uniform 64-bit value.
  std::uint64_t next_u64() {
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  /// Uniform integer in [0, bound). bound > 0. Debiased via rejection.
  std::uint64_t next_below(std::uint64_t bound) {
    ZL_EXPECTS(bound > 0);
    const std::uint64_t threshold = -bound % bound;
    for (;;) {
      const std::uint64_t r = next_u64();
      if (r >= threshold) return r % bound;
    }
  }

  /// Uniform integer in [lo, hi] inclusive.
  std::uint64_t next_in(std::uint64_t lo, std::uint64_t hi) {
    ZL_EXPECTS(lo <= hi);
    return lo + next_below(hi - lo + 1);
  }

  /// Uniform double in [0, 1).
  double next_double() {
    return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
  }

  /// Bernoulli trial.
  bool next_bool(double p_true) { return next_double() < p_true; }

  /// Normal variate (Box-Muller; one value per call, no caching so the
  /// stream stays position-independent).
  double next_normal(double mean, double stddev) {
    double u1 = next_double();
    while (u1 <= 1e-300) u1 = next_double();
    const double u2 = next_double();
    const double mag =
        std::sqrt(-2.0 * std::log(u1)) * std::cos(2.0 * std::numbers::pi * u2);
    return mean + stddev * mag;
  }

  /// Exponential variate with the given mean.
  double next_exponential(double mean) {
    double u = next_double();
    while (u <= 1e-300) u = next_double();
    return -mean * std::log(u);
  }

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }

  std::uint64_t state_[4] = {};
};

/// Zipf(s) sampler over ranks 1..n using precomputed CDF; used by the DNS
/// workload generator (query-name popularity is classically Zipfian).
class ZipfSampler {
 public:
  ZipfSampler(std::size_t n, double s) : cdf_(n) {
    ZL_EXPECTS(n > 0);
    double total = 0;
    for (std::size_t i = 0; i < n; ++i) {
      total += 1.0 / std::pow(static_cast<double>(i + 1), s);
      cdf_[i] = total;
    }
    for (auto& c : cdf_) c /= total;
  }

  /// Returns a rank in [0, n).
  std::size_t sample(Rng& rng) const {
    const double u = rng.next_double();
    std::size_t lo = 0;
    std::size_t hi = cdf_.size() - 1;
    while (lo < hi) {
      const std::size_t mid = (lo + hi) / 2;
      if (cdf_[mid] < u) {
        lo = mid + 1;
      } else {
        hi = mid;
      }
    }
    return lo;
  }

 private:
  std::vector<double> cdf_;
};

}  // namespace zipline
