#include "common/hexdump.hpp"

#include <array>
#include <cctype>
#include <cstdio>

namespace zipline {

std::string hex_string(std::span<const std::uint8_t> bytes) {
  static constexpr char digits[] = "0123456789abcdef";
  std::string out;
  out.reserve(bytes.size() * 3);
  for (std::size_t i = 0; i < bytes.size(); ++i) {
    if (i != 0) out.push_back(' ');
    out.push_back(digits[bytes[i] >> 4]);
    out.push_back(digits[bytes[i] & 0xF]);
  }
  return out;
}

std::string hexdump(std::span<const std::uint8_t> bytes) {
  std::string out;
  std::array<char, 16> ascii{};
  for (std::size_t i = 0; i < bytes.size(); i += 16) {
    char line[80];
    int n = std::snprintf(line, sizeof line, "%08zx  ", i);
    out.append(line, static_cast<std::size_t>(n));
    for (std::size_t j = 0; j < 16; ++j) {
      if (i + j < bytes.size()) {
        n = std::snprintf(line, sizeof line, "%02x ", bytes[i + j]);
        out.append(line, static_cast<std::size_t>(n));
        ascii[j] = std::isprint(bytes[i + j]) ? static_cast<char>(bytes[i + j])
                                              : '.';
      } else {
        out.append("   ");
        ascii[j] = ' ';
      }
      if (j == 7) out.push_back(' ');
    }
    out.append(" |");
    out.append(ascii.data(), 16);
    out.append("|\n");
  }
  return out;
}

std::string format_size(double bytes) {
  char buf[64];
  if (bytes >= 1e9) {
    std::snprintf(buf, sizeof buf, "%.2f GB", bytes / 1e9);
  } else if (bytes >= 1e6) {
    std::snprintf(buf, sizeof buf, "%.2f MB", bytes / 1e6);
  } else if (bytes >= 1e3) {
    std::snprintf(buf, sizeof buf, "%.2f kB", bytes / 1e3);
  } else {
    std::snprintf(buf, sizeof buf, "%.0f B", bytes);
  }
  return buf;
}

std::string format_ratio(double ratio, int decimals) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%.*f", decimals, ratio);
  return buf;
}

}  // namespace zipline
