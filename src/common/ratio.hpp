// The one compression-accounting convention used across the codebase.
//
// Every stats struct (CodecStats, StreamStats, engine::EngineStats) reports
//
//     ratio = bytes_out / bytes_in
//
// so a value below 1.0 means compression won and 0.5 means "half the
// bytes on the wire" — the same orientation as the paper's Fig. 3 bars.
// Zero input is defined as ratio 1.0 (nothing happened). Any code that
// needs the inverse ("compression factor") must invert at the display
// layer, never in a stats struct, so ratios from different layers stay
// directly comparable.
#pragma once

#include <cstdint>

namespace zipline {

[[nodiscard]] inline double compression_ratio(std::uint64_t bytes_in,
                                              std::uint64_t bytes_out) {
  return bytes_in == 0 ? 1.0
                       : static_cast<double>(bytes_out) /
                             static_cast<double>(bytes_in);
}

}  // namespace zipline
