// Minimal scheduling interface shared by the control plane and the
// discrete-event simulator, so zipline:: (the switch program + controller)
// does not depend on sim:: (the network model).
#pragma once

#include <functional>

#include "common/time.hpp"

namespace zipline {

class Scheduler {
 public:
  virtual ~Scheduler() = default;

  /// Runs `fn` at absolute simulation time `at` (>= now).
  virtual void schedule(SimTime at, std::function<void()> fn) = 0;

  /// Current simulation time.
  [[nodiscard]] virtual SimTime now() const = 0;
};

}  // namespace zipline
