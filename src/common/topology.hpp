// Minimal CPU topology probe for topology-aware flow steering.
//
// The steering policy only needs one fact per CPU: which package / NUMA
// domain it belongs to, so two candidate workers can be drawn from the
// same cache domain. On Linux that is
// /sys/devices/system/cpu/cpu<i>/topology/physical_package_id; everywhere
// else (or whenever sysfs is unreadable) the probe degrades to a single
// domain, which makes topology-aware steering behave exactly like plain
// load-aware two-choice steering. Detection is best-effort and cheap (one
// small file per CPU, read once at pipeline construction); placement never
// affects output bytes, so a wrong or missing topology costs balance only.
#pragma once

#include <algorithm>
#include <cstdint>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

namespace zipline::common {

struct Topology {
  /// cpu_domain[i] = dense domain index of CPU i (0-based, contiguous).
  std::vector<std::uint32_t> cpu_domain;
  /// Number of distinct domains (>= 1).
  std::uint32_t domains = 1;

  /// Probes the machine. Falls back to one domain spanning
  /// hardware_concurrency() CPUs on any failure or non-Linux platform.
  [[nodiscard]] static Topology detect() {
    Topology topo;
    const unsigned cpus = std::max(1u, std::thread::hardware_concurrency());
    topo.cpu_domain.assign(cpus, 0);
#if defined(__linux__)
    std::vector<std::int64_t> raw(cpus, -1);
    bool any = false;
    for (unsigned cpu = 0; cpu < cpus; ++cpu) {
      const std::string path = "/sys/devices/system/cpu/cpu" +
                               std::to_string(cpu) +
                               "/topology/physical_package_id";
      std::ifstream in(path);
      std::int64_t id = -1;
      if (in && (in >> id) && id >= 0) {
        raw[cpu] = id;
        any = true;
      }
    }
    if (any) {
      // Dense-remap the package ids (they need not be contiguous) in
      // first-seen order; unreadable CPUs join domain 0.
      std::vector<std::int64_t> seen;
      for (unsigned cpu = 0; cpu < cpus; ++cpu) {
        if (raw[cpu] < 0) {
          topo.cpu_domain[cpu] = 0;
          continue;
        }
        std::uint32_t dense = 0;
        for (; dense < seen.size(); ++dense) {
          if (seen[dense] == raw[cpu]) break;
        }
        if (dense == seen.size()) seen.push_back(raw[cpu]);
        topo.cpu_domain[cpu] = dense;
      }
      topo.domains = static_cast<std::uint32_t>(
          seen.empty() ? 1 : seen.size());
    }
#endif
    return topo;
  }
};

/// Maps `workers` pipeline workers onto the probe's domains the way the OS
/// would schedule them round-robin over CPUs: worker i inherits the domain
/// of CPU (i % cpus). With one domain every worker lands in domain 0.
[[nodiscard]] inline std::vector<std::uint32_t> worker_domains(
    const Topology& topo, std::size_t workers) {
  std::vector<std::uint32_t> result(workers, 0);
  if (topo.cpu_domain.empty()) return result;
  for (std::size_t i = 0; i < workers; ++i) {
    result[i] = topo.cpu_domain[i % topo.cpu_domain.size()];
  }
  return result;
}

}  // namespace zipline::common
