#include "common/simd.hpp"

#include <atomic>
#include <cstdlib>
#include <cstring>

#if defined(__x86_64__) || defined(__i386__)
#define ZIPLINE_SIMD_X86 1
#include <immintrin.h>
#elif defined(__aarch64__)
#define ZIPLINE_SIMD_NEON 1
#include <arm_neon.h>
#endif

namespace zipline::simd {
namespace {

constexpr std::uint64_t bswap64(std::uint64_t v) noexcept {
  return __builtin_bswap64(v);
}

// ---------------------------------------------------------------------------
// Scalar reference kernels. Every other tier must be byte-identical to
// these; they are also the only tier on architectures without vector code.
// ---------------------------------------------------------------------------

std::uint32_t crc_fold_scalar(const std::array<std::uint32_t, 256>* tables,
                              const std::uint64_t* words, std::size_t groups) {
  std::uint32_t acc = 0;
  for (std::size_t g = 0; g < groups; ++g) {
    const std::uint64_t w = words[g];
    const auto* t = tables + 8 * g;
    // Slicing-by-8: eight independent table loads, no branches, no
    // loop-carried dependency beyond the XOR accumulator.
    acc ^= t[0][w & 0xFF] ^ t[1][(w >> 8) & 0xFF] ^ t[2][(w >> 16) & 0xFF] ^
           t[3][(w >> 24) & 0xFF] ^ t[4][(w >> 32) & 0xFF] ^
           t[5][(w >> 40) & 0xFF] ^ t[6][(w >> 48) & 0xFF] ^
           t[7][(w >> 56) & 0xFF];
  }
  return acc;
}

void crc_fold_multi_scalar(const std::array<std::uint32_t, 256>* tables,
                           const std::uint64_t* plane, std::size_t stride,
                           std::size_t groups, std::uint32_t* out,
                           std::size_t count) {
  // The reference IS the specification: one serial fold per row.
  for (std::size_t c = 0; c < count; ++c) {
    out[c] = crc_fold_scalar(tables, plane + c * stride, groups);
  }
}

void pack_scalar(std::uint8_t* dst, const std::uint64_t* words,
                 std::size_t n) {
  for (std::size_t j = 0; j < n; ++j) {
    const std::uint64_t be = bswap64(words[n - 1 - j]);
    std::memcpy(dst + 8 * j, &be, 8);
  }
}

void unpack_scalar(std::uint64_t* words, const std::uint8_t* src,
                   std::size_t n) {
  for (std::size_t j = 0; j < n; ++j) {
    std::uint64_t v;
    std::memcpy(&v, src + 8 * j, 8);
    words[n - 1 - j] = bswap64(v);
  }
}

void block_shr_scalar(std::uint64_t* dst, std::size_t dst_stride,
                      const std::uint64_t* src, std::size_t src_stride,
                      std::size_t count, unsigned shift,
                      std::size_t src_words, std::size_t dst_words,
                      std::uint64_t top_mask) {
  for (std::size_t c = 0; c < count; ++c) {
    const std::uint64_t* s = src + c * src_stride;
    std::uint64_t* d = dst + c * dst_stride;
    for (std::size_t w = 0; w < dst_words; ++w) {
      const std::uint64_t lo = w < src_words ? s[w] : 0;
      const std::uint64_t hi = (w + 1) < src_words ? s[w + 1] : 0;
      d[w] = (lo >> shift) | (hi << (64 - shift));
    }
    d[dst_words - 1] &= top_mask;
  }
}

void block_shl_scalar(std::uint64_t* dst, std::size_t dst_stride,
                      const std::uint64_t* src, std::size_t src_stride,
                      std::size_t count, unsigned shift,
                      std::size_t src_words, std::size_t dst_words,
                      std::uint64_t top_mask) {
  for (std::size_t c = 0; c < count; ++c) {
    const std::uint64_t* s = src + c * src_stride;
    std::uint64_t* d = dst + c * dst_stride;
    for (std::size_t w = 0; w < dst_words; ++w) {
      const std::uint64_t lo = w < src_words ? s[w] : 0;
      const std::uint64_t below = (w >= 1 && (w - 1) < src_words) ? s[w - 1] : 0;
      d[w] = (lo << shift) | (below >> (64 - shift));
    }
    d[dst_words - 1] &= top_mask;
  }
}

constexpr std::array<KernelLevel, kKernelSlotCount> all_slots(
    KernelLevel level) noexcept {
  return {level, level, level, level, level, level};
}

constexpr KernelTable kScalarTable{KernelLevel::scalar,
                                   crc_fold_scalar,
                                   crc_fold_multi_scalar,
                                   pack_scalar,
                                   unpack_scalar,
                                   block_shr_scalar,
                                   block_shl_scalar,
                                   all_slots(KernelLevel::scalar)};

#if defined(ZIPLINE_SIMD_X86) || defined(ZIPLINE_SIMD_NEON)

// Four independent syndrome chains interleaved per table group (plain C —
// shared by the sse42 and neon tiers, which have no gather): the four
// accumulators issue their 32 table loads back to back, so each chain's
// loads fill the latency shadow of the other three. XOR is associative
// and commutative, so the result is bit-identical to the serial fold.
void crc_fold_multi_streams4(const std::array<std::uint32_t, 256>* tables,
                             const std::uint64_t* plane, std::size_t stride,
                             std::size_t groups, std::uint32_t* out,
                             std::size_t count) {
  std::size_t c = 0;
  for (; c + 4 <= count; c += 4) {
    const std::uint64_t* r0 = plane + c * stride;
    const std::uint64_t* r1 = r0 + stride;
    const std::uint64_t* r2 = r1 + stride;
    const std::uint64_t* r3 = r2 + stride;
    std::uint32_t a0 = 0;
    std::uint32_t a1 = 0;
    std::uint32_t a2 = 0;
    std::uint32_t a3 = 0;
    for (std::size_t g = 0; g < groups; ++g) {
      const auto* t = tables + 8 * g;
      const std::uint64_t w0 = r0[g];
      const std::uint64_t w1 = r1[g];
      const std::uint64_t w2 = r2[g];
      const std::uint64_t w3 = r3[g];
      a0 ^= t[0][w0 & 0xFF] ^ t[1][(w0 >> 8) & 0xFF] ^
            t[2][(w0 >> 16) & 0xFF] ^ t[3][(w0 >> 24) & 0xFF] ^
            t[4][(w0 >> 32) & 0xFF] ^ t[5][(w0 >> 40) & 0xFF] ^
            t[6][(w0 >> 48) & 0xFF] ^ t[7][(w0 >> 56) & 0xFF];
      a1 ^= t[0][w1 & 0xFF] ^ t[1][(w1 >> 8) & 0xFF] ^
            t[2][(w1 >> 16) & 0xFF] ^ t[3][(w1 >> 24) & 0xFF] ^
            t[4][(w1 >> 32) & 0xFF] ^ t[5][(w1 >> 40) & 0xFF] ^
            t[6][(w1 >> 48) & 0xFF] ^ t[7][(w1 >> 56) & 0xFF];
      a2 ^= t[0][w2 & 0xFF] ^ t[1][(w2 >> 8) & 0xFF] ^
            t[2][(w2 >> 16) & 0xFF] ^ t[3][(w2 >> 24) & 0xFF] ^
            t[4][(w2 >> 32) & 0xFF] ^ t[5][(w2 >> 40) & 0xFF] ^
            t[6][(w2 >> 48) & 0xFF] ^ t[7][(w2 >> 56) & 0xFF];
      a3 ^= t[0][w3 & 0xFF] ^ t[1][(w3 >> 8) & 0xFF] ^
            t[2][(w3 >> 16) & 0xFF] ^ t[3][(w3 >> 24) & 0xFF] ^
            t[4][(w3 >> 32) & 0xFF] ^ t[5][(w3 >> 40) & 0xFF] ^
            t[6][(w3 >> 48) & 0xFF] ^ t[7][(w3 >> 56) & 0xFF];
    }
    out[c] = a0;
    out[c + 1] = a1;
    out[c + 2] = a2;
    out[c + 3] = a3;
  }
  for (; c < count; ++c) {
    out[c] = crc_fold_scalar(tables, plane + c * stride, groups);
  }
}

#endif  // x86 or neon

#if defined(ZIPLINE_SIMD_X86)

// ---------------------------------------------------------------------------
// sse42 tier. No gather exists below AVX2, so the fold is the scalar body
// widened to two words per iteration on independent accumulator chains;
// the pack/unpack kernels move 16 bytes per iteration through PSHUFB (a
// full 16-byte reverse handles both the per-word byteswap and the
// high-word-first wire order in one shuffle). The block shift kernels stay
// scalar at this tier (recorded in slot_levels): a funnel shift across
// 64-bit lanes buys nothing at 128 bits wide.
// ---------------------------------------------------------------------------

std::uint32_t crc_fold_sse42(const std::array<std::uint32_t, 256>* tables,
                             const std::uint64_t* words, std::size_t groups) {
  std::uint32_t acc0 = 0;
  std::uint32_t acc1 = 0;
  std::size_t g = 0;
  for (; g + 2 <= groups; g += 2) {
    const std::uint64_t w0 = words[g];
    const std::uint64_t w1 = words[g + 1];
    const auto* t0 = tables + 8 * g;
    const auto* t1 = t0 + 8;
    acc0 ^= t0[0][w0 & 0xFF] ^ t0[1][(w0 >> 8) & 0xFF] ^
            t0[2][(w0 >> 16) & 0xFF] ^ t0[3][(w0 >> 24) & 0xFF] ^
            t0[4][(w0 >> 32) & 0xFF] ^ t0[5][(w0 >> 40) & 0xFF] ^
            t0[6][(w0 >> 48) & 0xFF] ^ t0[7][(w0 >> 56) & 0xFF];
    acc1 ^= t1[0][w1 & 0xFF] ^ t1[1][(w1 >> 8) & 0xFF] ^
            t1[2][(w1 >> 16) & 0xFF] ^ t1[3][(w1 >> 24) & 0xFF] ^
            t1[4][(w1 >> 32) & 0xFF] ^ t1[5][(w1 >> 40) & 0xFF] ^
            t1[6][(w1 >> 48) & 0xFF] ^ t1[7][(w1 >> 56) & 0xFF];
  }
  if (g < groups) {
    acc0 ^= crc_fold_scalar(tables + 8 * g, words + g, groups - g);
  }
  return acc0 ^ acc1;
}

__attribute__((target("sse4.2")))
void pack_sse42(std::uint8_t* dst, const std::uint64_t* words,
                std::size_t n) {
  const __m128i reverse16 = _mm_setr_epi8(15, 14, 13, 12, 11, 10, 9, 8,  //
                                          7, 6, 5, 4, 3, 2, 1, 0);
  std::size_t j = 0;
  for (; j + 2 <= n; j += 2) {
    const __m128i v = _mm_loadu_si128(
        reinterpret_cast<const __m128i*>(words + (n - 2 - j)));
    _mm_storeu_si128(reinterpret_cast<__m128i*>(dst + 8 * j),
                     _mm_shuffle_epi8(v, reverse16));
  }
  if (j < n) pack_scalar(dst + 8 * j, words, n - j);
}

__attribute__((target("sse4.2")))
void unpack_sse42(std::uint64_t* words, const std::uint8_t* src,
                  std::size_t n) {
  const __m128i reverse16 = _mm_setr_epi8(15, 14, 13, 12, 11, 10, 9, 8,  //
                                          7, 6, 5, 4, 3, 2, 1, 0);
  std::size_t j = 0;
  for (; j + 2 <= n; j += 2) {
    const __m128i v =
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(src + 8 * j));
    _mm_storeu_si128(reinterpret_cast<__m128i*>(words + (n - 2 - j)),
                     _mm_shuffle_epi8(v, reverse16));
  }
  if (j < n) unpack_scalar(words, src + 8 * j, n - j);
}

constexpr KernelTable kSse42Table{
    KernelLevel::sse42,
    crc_fold_sse42,
    crc_fold_multi_streams4,
    pack_sse42,
    unpack_sse42,
    block_shr_scalar,
    block_shl_scalar,
    {KernelLevel::sse42, KernelLevel::sse42, KernelLevel::sse42,
     KernelLevel::sse42, KernelLevel::scalar, KernelLevel::scalar}};

// ---------------------------------------------------------------------------
// avx2 tier. The fold becomes one VPGATHERDD per input word: the eight
// byte lanes are zero-extended to 32-bit indices, offset by their table
// number (tables are contiguous 256-entry blocks, so table j starts at
// element 256*j), gathered in one instruction and XORed into a 256-bit
// accumulator. Two words per iteration on independent accumulator chains
// hide the gather latency; the eight lanes reduce once at the end. The
// multi-stream fold walks two rows at once, one gather per (row, group).
// Block shifts stay scalar here too — AVX2 has no cheap 64-bit cross-lane
// funnel (VALIGNQ and VPTERNLOG arrive with AVX-512).
// ---------------------------------------------------------------------------

__attribute__((target("avx2")))
std::uint32_t xor_reduce_avx2(__m256i acc) {
  __m128i r = _mm_xor_si128(_mm256_castsi256_si128(acc),
                            _mm256_extracti128_si256(acc, 1));
  r = _mm_xor_si128(r, _mm_shuffle_epi32(r, _MM_SHUFFLE(1, 0, 3, 2)));
  r = _mm_xor_si128(r, _mm_shuffle_epi32(r, _MM_SHUFFLE(2, 3, 0, 1)));
  return static_cast<std::uint32_t>(_mm_cvtsi128_si32(r));
}

__attribute__((target("avx2")))
std::uint32_t crc_fold_avx2(const std::array<std::uint32_t, 256>* tables,
                            const std::uint64_t* words, std::size_t groups) {
  const __m256i lane_offsets =
      _mm256_setr_epi32(0, 256, 512, 768, 1024, 1280, 1536, 1792);
  __m256i acc0 = _mm256_setzero_si256();
  __m256i acc1 = _mm256_setzero_si256();
  std::size_t g = 0;
  for (; g + 2 <= groups; g += 2) {
    const __m256i idx0 = _mm256_add_epi32(
        _mm256_cvtepu8_epi32(
            _mm_loadl_epi64(reinterpret_cast<const __m128i*>(words + g))),
        lane_offsets);
    const __m256i idx1 = _mm256_add_epi32(
        _mm256_cvtepu8_epi32(
            _mm_loadl_epi64(reinterpret_cast<const __m128i*>(words + g + 1))),
        lane_offsets);
    const int* base0 = reinterpret_cast<const int*>((tables + 8 * g)->data());
    const int* base1 = base0 + 8 * 256;
    acc0 = _mm256_xor_si256(acc0, _mm256_i32gather_epi32(base0, idx0, 4));
    acc1 = _mm256_xor_si256(acc1, _mm256_i32gather_epi32(base1, idx1, 4));
  }
  if (g < groups) {
    const __m256i idx = _mm256_add_epi32(
        _mm256_cvtepu8_epi32(
            _mm_loadl_epi64(reinterpret_cast<const __m128i*>(words + g))),
        lane_offsets);
    const int* base = reinterpret_cast<const int*>((tables + 8 * g)->data());
    acc0 = _mm256_xor_si256(acc0, _mm256_i32gather_epi32(base, idx, 4));
  }
  return xor_reduce_avx2(_mm256_xor_si256(acc0, acc1));
}

__attribute__((target("avx2")))
void crc_fold_multi_avx2(const std::array<std::uint32_t, 256>* tables,
                         const std::uint64_t* plane, std::size_t stride,
                         std::size_t groups, std::uint32_t* out,
                         std::size_t count) {
  const __m256i lane_offsets =
      _mm256_setr_epi32(0, 256, 512, 768, 1024, 1280, 1536, 1792);
  std::size_t c = 0;
  for (; c + 2 <= count; c += 2) {
    const std::uint64_t* r0 = plane + c * stride;
    const std::uint64_t* r1 = r0 + stride;
    __m256i acc0 = _mm256_setzero_si256();
    __m256i acc1 = _mm256_setzero_si256();
    for (std::size_t g = 0; g < groups; ++g) {
      const int* base = reinterpret_cast<const int*>((tables + 8 * g)->data());
      const __m256i idx0 = _mm256_add_epi32(
          _mm256_cvtepu8_epi32(
              _mm_loadl_epi64(reinterpret_cast<const __m128i*>(r0 + g))),
          lane_offsets);
      const __m256i idx1 = _mm256_add_epi32(
          _mm256_cvtepu8_epi32(
              _mm_loadl_epi64(reinterpret_cast<const __m128i*>(r1 + g))),
          lane_offsets);
      acc0 = _mm256_xor_si256(acc0, _mm256_i32gather_epi32(base, idx0, 4));
      acc1 = _mm256_xor_si256(acc1, _mm256_i32gather_epi32(base, idx1, 4));
    }
    out[c] = xor_reduce_avx2(acc0);
    out[c + 1] = xor_reduce_avx2(acc1);
  }
  for (; c < count; ++c) {
    out[c] = crc_fold_avx2(tables, plane + c * stride, groups);
  }
}

__attribute__((target("avx2")))
void pack_avx2(std::uint8_t* dst, const std::uint64_t* words, std::size_t n) {
  // VPSHUFB reverses within each 128-bit lane; the cross-lane permute
  // swaps the lanes, completing a full 32-byte reverse (four words).
  const __m256i reverse_lane = _mm256_setr_epi8(
      15, 14, 13, 12, 11, 10, 9, 8, 7, 6, 5, 4, 3, 2, 1, 0,  //
      15, 14, 13, 12, 11, 10, 9, 8, 7, 6, 5, 4, 3, 2, 1, 0);
  std::size_t j = 0;
  for (; j + 4 <= n; j += 4) {
    __m256i v = _mm256_loadu_si256(
        reinterpret_cast<const __m256i*>(words + (n - 4 - j)));
    v = _mm256_shuffle_epi8(v, reverse_lane);
    v = _mm256_permute2x128_si256(v, v, 1);
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(dst + 8 * j), v);
  }
  if (j < n) pack_scalar(dst + 8 * j, words, n - j);
}

__attribute__((target("avx2")))
void unpack_avx2(std::uint64_t* words, const std::uint8_t* src,
                 std::size_t n) {
  const __m256i reverse_lane = _mm256_setr_epi8(
      15, 14, 13, 12, 11, 10, 9, 8, 7, 6, 5, 4, 3, 2, 1, 0,  //
      15, 14, 13, 12, 11, 10, 9, 8, 7, 6, 5, 4, 3, 2, 1, 0);
  std::size_t j = 0;
  for (; j + 4 <= n; j += 4) {
    __m256i v =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(src + 8 * j));
    v = _mm256_shuffle_epi8(v, reverse_lane);
    v = _mm256_permute2x128_si256(v, v, 1);
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(words + (n - 4 - j)), v);
  }
  if (j < n) unpack_scalar(words, src + 8 * j, n - j);
}

constexpr KernelTable kAvx2Table{
    KernelLevel::avx2,
    crc_fold_avx2,
    crc_fold_multi_avx2,
    pack_avx2,
    unpack_avx2,
    block_shr_scalar,
    block_shl_scalar,
    {KernelLevel::avx2, KernelLevel::avx2, KernelLevel::avx2,
     KernelLevel::avx2, KernelLevel::scalar, KernelLevel::scalar}};

// ---------------------------------------------------------------------------
// avx512 tier (gated on F+BW — every intrinsic below needs only those).
// The fold steps TWO table groups per iteration: 16 byte lanes (two words)
// zero-extend to one 512-bit index vector, one VPGATHERDD serves both
// groups. The multi-stream fold flips the packing — 16 lanes = the same
// group of two DIFFERENT rows — so four rows fly per iteration on two
// accumulators. Pack/unpack do a full 64-byte reverse as VPSHUFB (per-
// qword byteswap) + VPERMQ (qword reversal). The block funnel shifts are
// where AVX-512 earns the tier: VALIGNQ supplies each lane's neighbour
// word, VPTERNLOG fuses (lo | hi) & top_mask into one op, and masked
// loads/stores fault-suppress the ragged row edges — one vector op chain
// per row instead of a word loop.
// ---------------------------------------------------------------------------

#if defined(__GNUC__) && !defined(__clang__)
// GCC 12 reports _mm512_undefined_epi32's self-init as (maybe-)uninitialized
// when AVX-512 intrinsics inline into user code (GCC PR105593). The vector
// is a genuine don't-care passthrough; silence just this section.
#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wuninitialized"
#pragma GCC diagnostic ignored "-Wmaybe-uninitialized"
#endif

__attribute__((target("avx512f,avx512bw")))
std::uint32_t xor_reduce_avx512(__m512i acc) {
  const __m256i folded = _mm256_xor_si256(_mm512_castsi512_si256(acc),
                                          _mm512_extracti64x4_epi64(acc, 1));
  __m128i r = _mm_xor_si128(_mm256_castsi256_si128(folded),
                            _mm256_extracti128_si256(folded, 1));
  r = _mm_xor_si128(r, _mm_shuffle_epi32(r, _MM_SHUFFLE(1, 0, 3, 2)));
  r = _mm_xor_si128(r, _mm_shuffle_epi32(r, _MM_SHUFFLE(2, 3, 0, 1)));
  return static_cast<std::uint32_t>(_mm_cvtsi128_si32(r));
}

// XOR-reduce each 256-bit half separately: lanes 0-7 -> first result,
// lanes 8-15 -> second (the two-rows-per-vector multi-fold layout).
__attribute__((target("avx512f,avx512bw")))
void xor_reduce_avx512_halves(__m512i acc, std::uint32_t* lo,
                              std::uint32_t* hi) {
  __m128i a = _mm_xor_si128(
      _mm512_castsi512_si128(acc),
      _mm256_extracti128_si256(_mm512_castsi512_si256(acc), 1));
  a = _mm_xor_si128(a, _mm_shuffle_epi32(a, _MM_SHUFFLE(1, 0, 3, 2)));
  a = _mm_xor_si128(a, _mm_shuffle_epi32(a, _MM_SHUFFLE(2, 3, 0, 1)));
  *lo = static_cast<std::uint32_t>(_mm_cvtsi128_si32(a));
  const __m256i upper = _mm512_extracti64x4_epi64(acc, 1);
  __m128i b = _mm_xor_si128(_mm256_castsi256_si128(upper),
                            _mm256_extracti128_si256(upper, 1));
  b = _mm_xor_si128(b, _mm_shuffle_epi32(b, _MM_SHUFFLE(1, 0, 3, 2)));
  b = _mm_xor_si128(b, _mm_shuffle_epi32(b, _MM_SHUFFLE(2, 3, 0, 1)));
  *hi = static_cast<std::uint32_t>(_mm_cvtsi128_si32(b));
}

__attribute__((target("avx512f,avx512bw")))
std::uint32_t crc_fold_avx512(const std::array<std::uint32_t, 256>* tables,
                              const std::uint64_t* words,
                              std::size_t groups) {
  // Lanes 0-7 index group g's tables (offsets 0..1792), lanes 8-15 group
  // g+1's (2048..3840) — both against table block g's base.
  const __m512i lane_offsets = _mm512_setr_epi32(
      0, 256, 512, 768, 1024, 1280, 1536, 1792,  //
      2048, 2304, 2560, 2816, 3072, 3328, 3584, 3840);
  __m512i acc = _mm512_setzero_si512();
  std::size_t g = 0;
  for (; g + 2 <= groups; g += 2) {
    const __m512i idx = _mm512_add_epi32(
        _mm512_cvtepu8_epi32(_mm_loadu_si128(
            reinterpret_cast<const __m128i*>(words + g))),
        lane_offsets);
    const int* base = reinterpret_cast<const int*>((tables + 8 * g)->data());
    acc = _mm512_xor_si512(acc, _mm512_i32gather_epi32(idx, base, 4));
  }
  std::uint32_t r = xor_reduce_avx512(acc);
  if (g < groups) {
    r ^= crc_fold_scalar(tables + 8 * g, words + g, groups - g);
  }
  return r;
}

__attribute__((target("avx512f,avx512bw")))
void crc_fold_multi_avx512(const std::array<std::uint32_t, 256>* tables,
                           const std::uint64_t* plane, std::size_t stride,
                           std::size_t groups, std::uint32_t* out,
                           std::size_t count) {
  // Lanes 0-7 and 8-15 hold the SAME group of two different rows, so both
  // halves share one offset pattern and one table base per gather.
  const __m512i pair_offsets = _mm512_setr_epi32(
      0, 256, 512, 768, 1024, 1280, 1536, 1792,  //
      0, 256, 512, 768, 1024, 1280, 1536, 1792);
  std::size_t c = 0;
  for (; c + 4 <= count; c += 4) {
    const std::uint64_t* r0 = plane + c * stride;
    const std::uint64_t* r1 = r0 + stride;
    const std::uint64_t* r2 = r1 + stride;
    const std::uint64_t* r3 = r2 + stride;
    __m512i acc01 = _mm512_setzero_si512();
    __m512i acc23 = _mm512_setzero_si512();
    for (std::size_t g = 0; g < groups; ++g) {
      const int* base = reinterpret_cast<const int*>((tables + 8 * g)->data());
      const __m512i idx01 = _mm512_add_epi32(
          _mm512_cvtepu8_epi32(_mm_set_epi64x(
              static_cast<long long>(r1[g]), static_cast<long long>(r0[g]))),
          pair_offsets);
      const __m512i idx23 = _mm512_add_epi32(
          _mm512_cvtepu8_epi32(_mm_set_epi64x(
              static_cast<long long>(r3[g]), static_cast<long long>(r2[g]))),
          pair_offsets);
      acc01 = _mm512_xor_si512(acc01, _mm512_i32gather_epi32(idx01, base, 4));
      acc23 = _mm512_xor_si512(acc23, _mm512_i32gather_epi32(idx23, base, 4));
    }
    xor_reduce_avx512_halves(acc01, out + c, out + c + 1);
    xor_reduce_avx512_halves(acc23, out + c + 2, out + c + 3);
  }
  for (; c + 2 <= count; c += 2) {
    const std::uint64_t* r0 = plane + c * stride;
    const std::uint64_t* r1 = r0 + stride;
    __m512i acc = _mm512_setzero_si512();
    for (std::size_t g = 0; g < groups; ++g) {
      const int* base = reinterpret_cast<const int*>((tables + 8 * g)->data());
      const __m512i idx = _mm512_add_epi32(
          _mm512_cvtepu8_epi32(_mm_set_epi64x(
              static_cast<long long>(r1[g]), static_cast<long long>(r0[g]))),
          pair_offsets);
      acc = _mm512_xor_si512(acc, _mm512_i32gather_epi32(idx, base, 4));
    }
    xor_reduce_avx512_halves(acc, out + c, out + c + 1);
  }
  if (c < count) {
    out[c] = crc_fold_avx512(tables, plane + c * stride, groups);
  }
}

__attribute__((target("avx512f,avx512bw")))
void pack_avx512(std::uint8_t* dst, const std::uint64_t* words,
                 std::size_t n) {
  // Full 64-byte reverse in two ops: VPSHUFB byteswaps within each qword
  // (the [7..0, 15..8] pattern per 128-bit lane), VPERMQ reverses the
  // eight qwords — together, words come out high-word-first in wire order.
  const __m512i bswap_qwords = _mm512_broadcast_i32x4(
      _mm_setr_epi8(7, 6, 5, 4, 3, 2, 1, 0, 15, 14, 13, 12, 11, 10, 9, 8));
  const __m512i reverse_qwords = _mm512_setr_epi64(7, 6, 5, 4, 3, 2, 1, 0);
  const __m256i reverse_lane = _mm256_setr_epi8(
      15, 14, 13, 12, 11, 10, 9, 8, 7, 6, 5, 4, 3, 2, 1, 0,  //
      15, 14, 13, 12, 11, 10, 9, 8, 7, 6, 5, 4, 3, 2, 1, 0);
  std::size_t j = 0;
  for (; j + 8 <= n; j += 8) {
    __m512i v = _mm512_loadu_si512(words + (n - 8 - j));
    v = _mm512_shuffle_epi8(v, bswap_qwords);
    v = _mm512_permutexvar_epi64(reverse_qwords, v);
    _mm512_storeu_si512(dst + 8 * j, v);
  }
  for (; j + 4 <= n; j += 4) {
    __m256i v = _mm256_loadu_si256(
        reinterpret_cast<const __m256i*>(words + (n - 4 - j)));
    v = _mm256_shuffle_epi8(v, reverse_lane);
    v = _mm256_permute2x128_si256(v, v, 1);
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(dst + 8 * j), v);
  }
  if (j < n) pack_scalar(dst + 8 * j, words, n - j);
}

__attribute__((target("avx512f,avx512bw")))
void unpack_avx512(std::uint64_t* words, const std::uint8_t* src,
                   std::size_t n) {
  const __m512i bswap_qwords = _mm512_broadcast_i32x4(
      _mm_setr_epi8(7, 6, 5, 4, 3, 2, 1, 0, 15, 14, 13, 12, 11, 10, 9, 8));
  const __m512i reverse_qwords = _mm512_setr_epi64(7, 6, 5, 4, 3, 2, 1, 0);
  const __m256i reverse_lane = _mm256_setr_epi8(
      15, 14, 13, 12, 11, 10, 9, 8, 7, 6, 5, 4, 3, 2, 1, 0,  //
      15, 14, 13, 12, 11, 10, 9, 8, 7, 6, 5, 4, 3, 2, 1, 0);
  std::size_t j = 0;
  for (; j + 8 <= n; j += 8) {
    __m512i v = _mm512_loadu_si512(src + 8 * j);
    v = _mm512_shuffle_epi8(v, bswap_qwords);
    v = _mm512_permutexvar_epi64(reverse_qwords, v);
    _mm512_storeu_si512(words + (n - 8 - j), v);
  }
  for (; j + 4 <= n; j += 4) {
    __m256i v =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(src + 8 * j));
    v = _mm256_shuffle_epi8(v, reverse_lane);
    v = _mm256_permute2x128_si256(v, v, 1);
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(words + (n - 4 - j)), v);
  }
  if (j < n) unpack_scalar(words, src + 8 * j, n - j);
}

__attribute__((target("avx512f,avx512bw")))
void block_shr_avx512(std::uint64_t* dst, std::size_t dst_stride,
                      const std::uint64_t* src, std::size_t src_stride,
                      std::size_t count, unsigned shift,
                      std::size_t src_words, std::size_t dst_words,
                      std::uint64_t top_mask) {
  if (src_words > 8 || dst_words > 8) {
    // Row longer than one vector: fall back rather than loop lanes.
    block_shr_scalar(dst, dst_stride, src, src_stride, count, shift,
                     src_words, dst_words, top_mask);
    return;
  }
  const __mmask8 load_mask = static_cast<__mmask8>((1u << src_words) - 1);
  const __mmask8 store_mask = static_cast<__mmask8>((1u << dst_words) - 1);
  // All-ones except the top dst word's lane, which carries top_mask; the
  // VPTERNLOG below ANDs it in for free.
  const __m512i mask_vec = _mm512_mask_set1_epi64(
      _mm512_set1_epi64(-1), static_cast<__mmask8>(1u << (dst_words - 1)),
      static_cast<long long>(top_mask));
  const __m128i cnt_lo = _mm_cvtsi32_si128(static_cast<int>(shift));
  const __m128i cnt_hi = _mm_cvtsi32_si128(static_cast<int>(64 - shift));
  const __m512i zero = _mm512_setzero_si512();
  for (std::size_t c = 0; c < count; ++c) {
    const __m512i a = _mm512_maskz_loadu_epi64(load_mask, src + c * src_stride);
    // hi[i] = a[i+1] (0 past the end): VALIGNQ down one qword.
    const __m512i hi = _mm512_alignr_epi64(zero, a, 1);
    // maskz shift forms: zero passthrough dodges GCC's maybe-uninitialized
    // complaint about _mm512_undefined_epi32 in the unmasked intrinsics.
    const __m512i r = _mm512_ternarylogic_epi64(
        _mm512_maskz_srl_epi64(0xFF, a, cnt_lo),
        _mm512_maskz_sll_epi64(0xFF, hi, cnt_hi), mask_vec,
        0xA8);  // (a | b) & c
    _mm512_mask_storeu_epi64(dst + c * dst_stride, store_mask, r);
  }
}

__attribute__((target("avx512f,avx512bw")))
void block_shl_avx512(std::uint64_t* dst, std::size_t dst_stride,
                      const std::uint64_t* src, std::size_t src_stride,
                      std::size_t count, unsigned shift,
                      std::size_t src_words, std::size_t dst_words,
                      std::uint64_t top_mask) {
  if (src_words > 8 || dst_words > 8) {
    block_shl_scalar(dst, dst_stride, src, src_stride, count, shift,
                     src_words, dst_words, top_mask);
    return;
  }
  const __mmask8 load_mask = static_cast<__mmask8>((1u << src_words) - 1);
  const __mmask8 store_mask = static_cast<__mmask8>((1u << dst_words) - 1);
  const __m512i mask_vec = _mm512_mask_set1_epi64(
      _mm512_set1_epi64(-1), static_cast<__mmask8>(1u << (dst_words - 1)),
      static_cast<long long>(top_mask));
  const __m128i cnt_lo = _mm_cvtsi32_si128(static_cast<int>(shift));
  const __m128i cnt_hi = _mm_cvtsi32_si128(static_cast<int>(64 - shift));
  const __m512i zero = _mm512_setzero_si512();
  for (std::size_t c = 0; c < count; ++c) {
    const __m512i a = _mm512_maskz_loadu_epi64(load_mask, src + c * src_stride);
    // below[i] = a[i-1] (0 below lane 0): VALIGNQ up one qword.
    const __m512i below = _mm512_alignr_epi64(a, zero, 7);
    const __m512i r = _mm512_ternarylogic_epi64(
        _mm512_maskz_sll_epi64(0xFF, a, cnt_lo),
        _mm512_maskz_srl_epi64(0xFF, below, cnt_hi),
        mask_vec, 0xA8);  // (a | b) & c
    _mm512_mask_storeu_epi64(dst + c * dst_stride, store_mask, r);
  }
}

#if defined(__GNUC__) && !defined(__clang__)
#pragma GCC diagnostic pop
#endif

constexpr KernelTable kAvx512Table{KernelLevel::avx512,
                                   crc_fold_avx512,
                                   crc_fold_multi_avx512,
                                   pack_avx512,
                                   unpack_avx512,
                                   block_shr_avx512,
                                   block_shl_avx512,
                                   all_slots(KernelLevel::avx512)};

#elif defined(ZIPLINE_SIMD_NEON)

// ---------------------------------------------------------------------------
// neon tier (aarch64, where NEON is architectural baseline). REV64 gives
// the per-word byteswap; EXT swaps the two 64-bit halves for the
// high-word-first wire order. The fold mirrors the sse42 two-chain unroll
// (no gather on NEON either); the multi-stream fold is the shared
// four-chain interleave. Block shifts stay scalar (no 64-bit cross-lane
// funnel at 128 bits wide), recorded in slot_levels.
// ---------------------------------------------------------------------------

std::uint32_t crc_fold_neon(const std::array<std::uint32_t, 256>* tables,
                            const std::uint64_t* words, std::size_t groups) {
  std::uint32_t acc0 = 0;
  std::uint32_t acc1 = 0;
  std::size_t g = 0;
  for (; g + 2 <= groups; g += 2) {
    const std::uint64_t w0 = words[g];
    const std::uint64_t w1 = words[g + 1];
    const auto* t0 = tables + 8 * g;
    const auto* t1 = t0 + 8;
    acc0 ^= t0[0][w0 & 0xFF] ^ t0[1][(w0 >> 8) & 0xFF] ^
            t0[2][(w0 >> 16) & 0xFF] ^ t0[3][(w0 >> 24) & 0xFF] ^
            t0[4][(w0 >> 32) & 0xFF] ^ t0[5][(w0 >> 40) & 0xFF] ^
            t0[6][(w0 >> 48) & 0xFF] ^ t0[7][(w0 >> 56) & 0xFF];
    acc1 ^= t1[0][w1 & 0xFF] ^ t1[1][(w1 >> 8) & 0xFF] ^
            t1[2][(w1 >> 16) & 0xFF] ^ t1[3][(w1 >> 24) & 0xFF] ^
            t1[4][(w1 >> 32) & 0xFF] ^ t1[5][(w1 >> 40) & 0xFF] ^
            t1[6][(w1 >> 48) & 0xFF] ^ t1[7][(w1 >> 56) & 0xFF];
  }
  if (g < groups) {
    acc0 ^= crc_fold_scalar(tables + 8 * g, words + g, groups - g);
  }
  return acc0 ^ acc1;
}

void pack_neon(std::uint8_t* dst, const std::uint64_t* words, std::size_t n) {
  std::size_t j = 0;
  for (; j + 2 <= n; j += 2) {
    uint8x16_t v = vld1q_u8(
        reinterpret_cast<const std::uint8_t*>(words + (n - 2 - j)));
    v = vrev64q_u8(v);        // byteswap within each 64-bit word
    v = vextq_u8(v, v, 8);    // swap halves: high word first on the wire
    vst1q_u8(dst + 8 * j, v);
  }
  if (j < n) pack_scalar(dst + 8 * j, words, n - j);
}

void unpack_neon(std::uint64_t* words, const std::uint8_t* src,
                 std::size_t n) {
  std::size_t j = 0;
  for (; j + 2 <= n; j += 2) {
    uint8x16_t v = vld1q_u8(src + 8 * j);
    v = vrev64q_u8(v);
    v = vextq_u8(v, v, 8);
    vst1q_u8(reinterpret_cast<std::uint8_t*>(words + (n - 2 - j)), v);
  }
  if (j < n) unpack_scalar(words, src + 8 * j, n - j);
}

constexpr KernelTable kNeonTable{
    KernelLevel::neon,
    crc_fold_neon,
    crc_fold_multi_streams4,
    pack_neon,
    unpack_neon,
    block_shr_scalar,
    block_shl_scalar,
    {KernelLevel::neon, KernelLevel::neon, KernelLevel::neon,
     KernelLevel::neon, KernelLevel::scalar, KernelLevel::scalar}};

#endif  // architecture tiers

std::atomic<KernelLevel>& requested_slot() noexcept {
  static std::atomic<KernelLevel> slot{KernelLevel::scalar};
  return slot;
}

const KernelTable& resolve() noexcept {
  KernelLevel request = probe();
  if (const char* env = std::getenv("ZIPLINE_SIMD")) {
    if (const auto parsed = parse_level(env)) {
      request = *parsed;
    }
  }
  requested_slot().store(request, std::memory_order_release);
  return table_for(request);
}

std::atomic<const KernelTable*>& active_slot() noexcept {
  // First use resolves once; later loads are a single acquire.
  static std::atomic<const KernelTable*> slot{&resolve()};
  return slot;
}

}  // namespace

std::string_view level_name(KernelLevel level) noexcept {
  switch (level) {
    case KernelLevel::scalar:
      return "scalar";
    case KernelLevel::sse42:
      return "sse42";
    case KernelLevel::neon:
      return "neon";
    case KernelLevel::avx2:
      return "avx2";
    case KernelLevel::avx512:
      return "avx512";
  }
  return "scalar";
}

std::optional<KernelLevel> parse_level(std::string_view name) noexcept {
  if (name == "scalar") return KernelLevel::scalar;
  if (name == "sse42") return KernelLevel::sse42;
  if (name == "neon") return KernelLevel::neon;
  if (name == "avx2") return KernelLevel::avx2;
  if (name == "avx512") return KernelLevel::avx512;
  return std::nullopt;
}

std::string_view kernel_slot_name(KernelSlot slot) noexcept {
  switch (slot) {
    case KernelSlot::crc_fold:
      return "crc_fold";
    case KernelSlot::crc_fold_multi:
      return "crc_fold_multi";
    case KernelSlot::pack_words:
      return "pack_words";
    case KernelSlot::unpack_words:
      return "unpack_words";
    case KernelSlot::block_shr:
      return "block_shr";
    case KernelSlot::block_shl:
      return "block_shl";
  }
  return "crc_fold";
}

KernelLevel probe() noexcept {
#if defined(ZIPLINE_SIMD_X86)
  if (__builtin_cpu_supports("avx512f") &&
      __builtin_cpu_supports("avx512bw")) {
    return KernelLevel::avx512;
  }
  if (__builtin_cpu_supports("avx2")) return KernelLevel::avx2;
  if (__builtin_cpu_supports("sse4.2") && __builtin_cpu_supports("ssse3")) {
    return KernelLevel::sse42;
  }
  return KernelLevel::scalar;
#elif defined(ZIPLINE_SIMD_NEON)
  return KernelLevel::neon;
#else
  return KernelLevel::scalar;
#endif
}

bool supported(KernelLevel level) noexcept {
  switch (level) {
    case KernelLevel::scalar:
      return true;
#if defined(ZIPLINE_SIMD_X86)
    case KernelLevel::sse42:
      return __builtin_cpu_supports("sse4.2") &&
             __builtin_cpu_supports("ssse3");
    case KernelLevel::avx2:
      return __builtin_cpu_supports("avx2");
    case KernelLevel::avx512:
      return __builtin_cpu_supports("avx512f") &&
             __builtin_cpu_supports("avx512bw");
    case KernelLevel::neon:
      return false;
#elif defined(ZIPLINE_SIMD_NEON)
    case KernelLevel::neon:
      return true;
    case KernelLevel::sse42:
    case KernelLevel::avx2:
    case KernelLevel::avx512:
      return false;
#else
    case KernelLevel::sse42:
    case KernelLevel::neon:
    case KernelLevel::avx2:
    case KernelLevel::avx512:
      return false;
#endif
  }
  return false;
}

const KernelTable& table_for(KernelLevel level) noexcept {
#if defined(ZIPLINE_SIMD_X86)
  // neon on x86 clamps straight to scalar (it sits outside the x86 clamp
  // ladder); everything else clamps DOWN through the supported tiers.
  if (level != KernelLevel::neon) {
    if (level >= KernelLevel::avx512 && supported(KernelLevel::avx512)) {
      return kAvx512Table;
    }
    if (level >= KernelLevel::avx2 && supported(KernelLevel::avx2)) {
      return kAvx2Table;
    }
    if (level >= KernelLevel::sse42 && supported(KernelLevel::sse42)) {
      return kSse42Table;
    }
  }
#elif defined(ZIPLINE_SIMD_NEON)
  if (level != KernelLevel::scalar) return kNeonTable;
#else
  (void)level;
#endif
  return kScalarTable;
}

const KernelTable& active() noexcept {
  return *active_slot().load(std::memory_order_acquire);
}

KernelLevel requested() noexcept {
  (void)active();  // force one-time resolution so the request is recorded
  return requested_slot().load(std::memory_order_acquire);
}

KernelLevel set_active_for_testing(KernelLevel level) noexcept {
  const KernelTable* previous =
      active_slot().exchange(&table_for(level), std::memory_order_acq_rel);
  requested_slot().store(level, std::memory_order_release);
  return previous->level;
}

}  // namespace zipline::simd
