#include "common/simd.hpp"

#include <atomic>
#include <cstdlib>
#include <cstring>

#if defined(__x86_64__) || defined(__i386__)
#define ZIPLINE_SIMD_X86 1
#include <immintrin.h>
#elif defined(__aarch64__)
#define ZIPLINE_SIMD_NEON 1
#include <arm_neon.h>
#endif

namespace zipline::simd {
namespace {

constexpr std::uint64_t bswap64(std::uint64_t v) noexcept {
  return __builtin_bswap64(v);
}

// ---------------------------------------------------------------------------
// Scalar reference kernels. Every other tier must be byte-identical to
// these; they are also the only tier on architectures without vector code.
// ---------------------------------------------------------------------------

std::uint32_t crc_fold_scalar(const std::array<std::uint32_t, 256>* tables,
                              const std::uint64_t* words, std::size_t groups) {
  std::uint32_t acc = 0;
  for (std::size_t g = 0; g < groups; ++g) {
    const std::uint64_t w = words[g];
    const auto* t = tables + 8 * g;
    // Slicing-by-8: eight independent table loads, no branches, no
    // loop-carried dependency beyond the XOR accumulator.
    acc ^= t[0][w & 0xFF] ^ t[1][(w >> 8) & 0xFF] ^ t[2][(w >> 16) & 0xFF] ^
           t[3][(w >> 24) & 0xFF] ^ t[4][(w >> 32) & 0xFF] ^
           t[5][(w >> 40) & 0xFF] ^ t[6][(w >> 48) & 0xFF] ^
           t[7][(w >> 56) & 0xFF];
  }
  return acc;
}

void pack_scalar(std::uint8_t* dst, const std::uint64_t* words,
                 std::size_t n) {
  for (std::size_t j = 0; j < n; ++j) {
    const std::uint64_t be = bswap64(words[n - 1 - j]);
    std::memcpy(dst + 8 * j, &be, 8);
  }
}

void unpack_scalar(std::uint64_t* words, const std::uint8_t* src,
                   std::size_t n) {
  for (std::size_t j = 0; j < n; ++j) {
    std::uint64_t v;
    std::memcpy(&v, src + 8 * j, 8);
    words[n - 1 - j] = bswap64(v);
  }
}

constexpr KernelTable kScalarTable{KernelLevel::scalar, crc_fold_scalar,
                                   pack_scalar, unpack_scalar};

#if defined(ZIPLINE_SIMD_X86)

// ---------------------------------------------------------------------------
// sse42 tier. No gather exists below AVX2, so the fold is the scalar body
// widened to two words per iteration on independent accumulator chains;
// the pack/unpack kernels move 16 bytes per iteration through PSHUFB (a
// full 16-byte reverse handles both the per-word byteswap and the
// high-word-first wire order in one shuffle).
// ---------------------------------------------------------------------------

std::uint32_t crc_fold_sse42(const std::array<std::uint32_t, 256>* tables,
                             const std::uint64_t* words, std::size_t groups) {
  std::uint32_t acc0 = 0;
  std::uint32_t acc1 = 0;
  std::size_t g = 0;
  for (; g + 2 <= groups; g += 2) {
    const std::uint64_t w0 = words[g];
    const std::uint64_t w1 = words[g + 1];
    const auto* t0 = tables + 8 * g;
    const auto* t1 = t0 + 8;
    acc0 ^= t0[0][w0 & 0xFF] ^ t0[1][(w0 >> 8) & 0xFF] ^
            t0[2][(w0 >> 16) & 0xFF] ^ t0[3][(w0 >> 24) & 0xFF] ^
            t0[4][(w0 >> 32) & 0xFF] ^ t0[5][(w0 >> 40) & 0xFF] ^
            t0[6][(w0 >> 48) & 0xFF] ^ t0[7][(w0 >> 56) & 0xFF];
    acc1 ^= t1[0][w1 & 0xFF] ^ t1[1][(w1 >> 8) & 0xFF] ^
            t1[2][(w1 >> 16) & 0xFF] ^ t1[3][(w1 >> 24) & 0xFF] ^
            t1[4][(w1 >> 32) & 0xFF] ^ t1[5][(w1 >> 40) & 0xFF] ^
            t1[6][(w1 >> 48) & 0xFF] ^ t1[7][(w1 >> 56) & 0xFF];
  }
  if (g < groups) {
    acc0 ^= crc_fold_scalar(tables + 8 * g, words + g, groups - g);
  }
  return acc0 ^ acc1;
}

__attribute__((target("sse4.2")))
void pack_sse42(std::uint8_t* dst, const std::uint64_t* words,
                std::size_t n) {
  const __m128i reverse16 = _mm_setr_epi8(15, 14, 13, 12, 11, 10, 9, 8,  //
                                          7, 6, 5, 4, 3, 2, 1, 0);
  std::size_t j = 0;
  for (; j + 2 <= n; j += 2) {
    const __m128i v = _mm_loadu_si128(
        reinterpret_cast<const __m128i*>(words + (n - 2 - j)));
    _mm_storeu_si128(reinterpret_cast<__m128i*>(dst + 8 * j),
                     _mm_shuffle_epi8(v, reverse16));
  }
  if (j < n) pack_scalar(dst + 8 * j, words, n - j);
}

__attribute__((target("sse4.2")))
void unpack_sse42(std::uint64_t* words, const std::uint8_t* src,
                  std::size_t n) {
  const __m128i reverse16 = _mm_setr_epi8(15, 14, 13, 12, 11, 10, 9, 8,  //
                                          7, 6, 5, 4, 3, 2, 1, 0);
  std::size_t j = 0;
  for (; j + 2 <= n; j += 2) {
    const __m128i v =
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(src + 8 * j));
    _mm_storeu_si128(reinterpret_cast<__m128i*>(words + (n - 2 - j)),
                     _mm_shuffle_epi8(v, reverse16));
  }
  if (j < n) unpack_scalar(words, src + 8 * j, n - j);
}

constexpr KernelTable kSse42Table{KernelLevel::sse42, crc_fold_sse42,
                                  pack_sse42, unpack_sse42};

// ---------------------------------------------------------------------------
// avx2 tier. The fold becomes one VPGATHERDD per input word: the eight
// byte lanes are zero-extended to 32-bit indices, offset by their table
// number (tables are contiguous 256-entry blocks, so table j starts at
// element 256*j), gathered in one instruction and XORed into a 256-bit
// accumulator. Two words per iteration on independent accumulator chains
// hide the gather latency; the eight lanes reduce once at the end.
// ---------------------------------------------------------------------------

__attribute__((target("avx2")))
std::uint32_t crc_fold_avx2(const std::array<std::uint32_t, 256>* tables,
                            const std::uint64_t* words, std::size_t groups) {
  const __m256i lane_offsets =
      _mm256_setr_epi32(0, 256, 512, 768, 1024, 1280, 1536, 1792);
  __m256i acc0 = _mm256_setzero_si256();
  __m256i acc1 = _mm256_setzero_si256();
  std::size_t g = 0;
  for (; g + 2 <= groups; g += 2) {
    const __m256i idx0 = _mm256_add_epi32(
        _mm256_cvtepu8_epi32(
            _mm_loadl_epi64(reinterpret_cast<const __m128i*>(words + g))),
        lane_offsets);
    const __m256i idx1 = _mm256_add_epi32(
        _mm256_cvtepu8_epi32(
            _mm_loadl_epi64(reinterpret_cast<const __m128i*>(words + g + 1))),
        lane_offsets);
    const int* base0 = reinterpret_cast<const int*>((tables + 8 * g)->data());
    const int* base1 = base0 + 8 * 256;
    acc0 = _mm256_xor_si256(acc0, _mm256_i32gather_epi32(base0, idx0, 4));
    acc1 = _mm256_xor_si256(acc1, _mm256_i32gather_epi32(base1, idx1, 4));
  }
  if (g < groups) {
    const __m256i idx = _mm256_add_epi32(
        _mm256_cvtepu8_epi32(
            _mm_loadl_epi64(reinterpret_cast<const __m128i*>(words + g))),
        lane_offsets);
    const int* base = reinterpret_cast<const int*>((tables + 8 * g)->data());
    acc0 = _mm256_xor_si256(acc0, _mm256_i32gather_epi32(base, idx, 4));
  }
  const __m256i acc = _mm256_xor_si256(acc0, acc1);
  __m128i r = _mm_xor_si128(_mm256_castsi256_si128(acc),
                            _mm256_extracti128_si256(acc, 1));
  r = _mm_xor_si128(r, _mm_shuffle_epi32(r, _MM_SHUFFLE(1, 0, 3, 2)));
  r = _mm_xor_si128(r, _mm_shuffle_epi32(r, _MM_SHUFFLE(2, 3, 0, 1)));
  return static_cast<std::uint32_t>(_mm_cvtsi128_si32(r));
}

__attribute__((target("avx2")))
void pack_avx2(std::uint8_t* dst, const std::uint64_t* words, std::size_t n) {
  // VPSHUFB reverses within each 128-bit lane; the cross-lane permute
  // swaps the lanes, completing a full 32-byte reverse (four words).
  const __m256i reverse_lane = _mm256_setr_epi8(
      15, 14, 13, 12, 11, 10, 9, 8, 7, 6, 5, 4, 3, 2, 1, 0,  //
      15, 14, 13, 12, 11, 10, 9, 8, 7, 6, 5, 4, 3, 2, 1, 0);
  std::size_t j = 0;
  for (; j + 4 <= n; j += 4) {
    __m256i v = _mm256_loadu_si256(
        reinterpret_cast<const __m256i*>(words + (n - 4 - j)));
    v = _mm256_shuffle_epi8(v, reverse_lane);
    v = _mm256_permute2x128_si256(v, v, 1);
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(dst + 8 * j), v);
  }
  if (j < n) pack_scalar(dst + 8 * j, words, n - j);
}

__attribute__((target("avx2")))
void unpack_avx2(std::uint64_t* words, const std::uint8_t* src,
                 std::size_t n) {
  const __m256i reverse_lane = _mm256_setr_epi8(
      15, 14, 13, 12, 11, 10, 9, 8, 7, 6, 5, 4, 3, 2, 1, 0,  //
      15, 14, 13, 12, 11, 10, 9, 8, 7, 6, 5, 4, 3, 2, 1, 0);
  std::size_t j = 0;
  for (; j + 4 <= n; j += 4) {
    __m256i v =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(src + 8 * j));
    v = _mm256_shuffle_epi8(v, reverse_lane);
    v = _mm256_permute2x128_si256(v, v, 1);
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(words + (n - 4 - j)), v);
  }
  if (j < n) unpack_scalar(words, src + 8 * j, n - j);
}

constexpr KernelTable kAvx2Table{KernelLevel::avx2, crc_fold_avx2, pack_avx2,
                                 unpack_avx2};

#elif defined(ZIPLINE_SIMD_NEON)

// ---------------------------------------------------------------------------
// neon tier (aarch64, where NEON is architectural baseline). REV64 gives
// the per-word byteswap; EXT swaps the two 64-bit halves for the
// high-word-first wire order. The fold mirrors the sse42 two-chain unroll
// (no gather on NEON either).
// ---------------------------------------------------------------------------

std::uint32_t crc_fold_neon(const std::array<std::uint32_t, 256>* tables,
                            const std::uint64_t* words, std::size_t groups) {
  std::uint32_t acc0 = 0;
  std::uint32_t acc1 = 0;
  std::size_t g = 0;
  for (; g + 2 <= groups; g += 2) {
    const std::uint64_t w0 = words[g];
    const std::uint64_t w1 = words[g + 1];
    const auto* t0 = tables + 8 * g;
    const auto* t1 = t0 + 8;
    acc0 ^= t0[0][w0 & 0xFF] ^ t0[1][(w0 >> 8) & 0xFF] ^
            t0[2][(w0 >> 16) & 0xFF] ^ t0[3][(w0 >> 24) & 0xFF] ^
            t0[4][(w0 >> 32) & 0xFF] ^ t0[5][(w0 >> 40) & 0xFF] ^
            t0[6][(w0 >> 48) & 0xFF] ^ t0[7][(w0 >> 56) & 0xFF];
    acc1 ^= t1[0][w1 & 0xFF] ^ t1[1][(w1 >> 8) & 0xFF] ^
            t1[2][(w1 >> 16) & 0xFF] ^ t1[3][(w1 >> 24) & 0xFF] ^
            t1[4][(w1 >> 32) & 0xFF] ^ t1[5][(w1 >> 40) & 0xFF] ^
            t1[6][(w1 >> 48) & 0xFF] ^ t1[7][(w1 >> 56) & 0xFF];
  }
  if (g < groups) {
    acc0 ^= crc_fold_scalar(tables + 8 * g, words + g, groups - g);
  }
  return acc0 ^ acc1;
}

void pack_neon(std::uint8_t* dst, const std::uint64_t* words, std::size_t n) {
  std::size_t j = 0;
  for (; j + 2 <= n; j += 2) {
    uint8x16_t v = vld1q_u8(
        reinterpret_cast<const std::uint8_t*>(words + (n - 2 - j)));
    v = vrev64q_u8(v);        // byteswap within each 64-bit word
    v = vextq_u8(v, v, 8);    // swap halves: high word first on the wire
    vst1q_u8(dst + 8 * j, v);
  }
  if (j < n) pack_scalar(dst + 8 * j, words, n - j);
}

void unpack_neon(std::uint64_t* words, const std::uint8_t* src,
                 std::size_t n) {
  std::size_t j = 0;
  for (; j + 2 <= n; j += 2) {
    uint8x16_t v = vld1q_u8(src + 8 * j);
    v = vrev64q_u8(v);
    v = vextq_u8(v, v, 8);
    vst1q_u8(reinterpret_cast<std::uint8_t*>(words + (n - 2 - j)), v);
  }
  if (j < n) unpack_scalar(words, src + 8 * j, n - j);
}

constexpr KernelTable kNeonTable{KernelLevel::neon, crc_fold_neon, pack_neon,
                                 unpack_neon};

#endif  // architecture tiers

const KernelTable& resolve() noexcept {
  if (const char* env = std::getenv("ZIPLINE_SIMD")) {
    if (const auto requested = parse_level(env)) {
      return table_for(*requested);
    }
  }
  return table_for(probe());
}

std::atomic<const KernelTable*>& active_slot() noexcept {
  // First use resolves once; later loads are a single acquire.
  static std::atomic<const KernelTable*> slot{&resolve()};
  return slot;
}

}  // namespace

std::string_view level_name(KernelLevel level) noexcept {
  switch (level) {
    case KernelLevel::scalar:
      return "scalar";
    case KernelLevel::sse42:
      return "sse42";
    case KernelLevel::neon:
      return "neon";
    case KernelLevel::avx2:
      return "avx2";
  }
  return "scalar";
}

std::optional<KernelLevel> parse_level(std::string_view name) noexcept {
  if (name == "scalar") return KernelLevel::scalar;
  if (name == "sse42") return KernelLevel::sse42;
  if (name == "neon") return KernelLevel::neon;
  if (name == "avx2") return KernelLevel::avx2;
  return std::nullopt;
}

KernelLevel probe() noexcept {
#if defined(ZIPLINE_SIMD_X86)
  if (__builtin_cpu_supports("avx2")) return KernelLevel::avx2;
  if (__builtin_cpu_supports("sse4.2") && __builtin_cpu_supports("ssse3")) {
    return KernelLevel::sse42;
  }
  return KernelLevel::scalar;
#elif defined(ZIPLINE_SIMD_NEON)
  return KernelLevel::neon;
#else
  return KernelLevel::scalar;
#endif
}

bool supported(KernelLevel level) noexcept {
  switch (level) {
    case KernelLevel::scalar:
      return true;
#if defined(ZIPLINE_SIMD_X86)
    case KernelLevel::sse42:
      return __builtin_cpu_supports("sse4.2") &&
             __builtin_cpu_supports("ssse3");
    case KernelLevel::avx2:
      return __builtin_cpu_supports("avx2");
    case KernelLevel::neon:
      return false;
#elif defined(ZIPLINE_SIMD_NEON)
    case KernelLevel::neon:
      return true;
    case KernelLevel::sse42:
    case KernelLevel::avx2:
      return false;
#else
    case KernelLevel::sse42:
    case KernelLevel::neon:
    case KernelLevel::avx2:
      return false;
#endif
  }
  return false;
}

const KernelTable& table_for(KernelLevel level) noexcept {
#if defined(ZIPLINE_SIMD_X86)
  if (level == KernelLevel::avx2 && supported(KernelLevel::avx2)) {
    return kAvx2Table;
  }
  // avx2 without hardware support clamps down through sse42.
  if (level >= KernelLevel::sse42 && level != KernelLevel::neon &&
      supported(KernelLevel::sse42)) {
    return kSse42Table;
  }
#elif defined(ZIPLINE_SIMD_NEON)
  if (level != KernelLevel::scalar) return kNeonTable;
#else
  (void)level;
#endif
  return kScalarTable;
}

const KernelTable& active() noexcept {
  return *active_slot().load(std::memory_order_acquire);
}

KernelLevel set_active_for_testing(KernelLevel level) noexcept {
  const KernelTable* previous =
      active_slot().exchange(&table_for(level), std::memory_order_acq_rel);
  return previous->level;
}

}  // namespace zipline::simd
