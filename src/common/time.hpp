// Simulation time: signed nanoseconds since simulation start.
//
// A plain integer (rather than std::chrono) keeps the discrete-event core
// trivial to serialize, print and reason about; helpers below convert from
// human units.
#pragma once

#include <cstdint>

namespace zipline {

using SimTime = std::int64_t;  // nanoseconds

constexpr SimTime operator""_ns(unsigned long long v) {
  return static_cast<SimTime>(v);
}
constexpr SimTime operator""_us(unsigned long long v) {
  return static_cast<SimTime>(v) * 1000;
}
constexpr SimTime operator""_ms(unsigned long long v) {
  return static_cast<SimTime>(v) * 1000000;
}
constexpr SimTime operator""_s(unsigned long long v) {
  return static_cast<SimTime>(v) * 1000000000;
}

constexpr double to_us(SimTime t) { return static_cast<double>(t) / 1e3; }
constexpr double to_ms(SimTime t) { return static_cast<double>(t) / 1e6; }
constexpr double to_seconds(SimTime t) { return static_cast<double>(t) / 1e9; }

constexpr SimTime from_seconds(double s) {
  return static_cast<SimTime>(s * 1e9);
}

}  // namespace zipline
