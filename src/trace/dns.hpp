// DNS-query workload: the stand-in for the paper's real-world dataset
// ("a day of DNS queries at a 4000 users university campus" [31], filtered
// to 34 B queries towards the main resolver, with the random transaction
// identifier excluded).
//
// We cannot redistribute the original capture, so this generator produces
// a behaviorally equivalent trace: a Zipf-popular pool of query names,
// each encoded as a fixed 34-byte DNS query (12 B header + QNAME + QTYPE +
// QCLASS) whose only varying bytes are the 2-byte transaction ID. The
// paper's filter (drop the transaction ID) yields 32-byte effective
// payloads — a small set of distinct values repeated all day, which is
// exactly the structure GD and gzip both exploit.
#pragma once

#include <cstdint>
#include <vector>

namespace zipline::trace {

struct DnsTraceConfig {
  std::uint64_t query_count = 735'000;  ///< ~25 MB of 34 B queries
  std::size_t name_count = 4000;        ///< distinct query names (4000-user campus)
  double zipf_exponent = 0.9;           ///< query-name popularity skew
  std::uint64_t seed = 7;
};

/// Full 34-byte queries, transaction IDs randomized per query.
[[nodiscard]] std::vector<std::vector<std::uint8_t>> generate_dns_queries(
    const DnsTraceConfig& config);

/// The paper's preprocessing: strips the 2-byte transaction identifier,
/// leaving the 32-byte effective payloads the experiment runs on.
[[nodiscard]] std::vector<std::vector<std::uint8_t>> strip_transaction_ids(
    const std::vector<std::vector<std::uint8_t>>& queries);

/// Size of one query on the wire (34 B, as in the paper's filter).
inline constexpr std::size_t kDnsQueryBytes = 34;

}  // namespace zipline::trace
