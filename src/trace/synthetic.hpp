// Synthetic sensor-readout trace (paper §7, "Compression").
//
// The paper engineers 3,124,000 chunks of 256 bit "behaviorally close to
// typical readouts from a sensor" and converts them to a pcap trace. This
// generator models a fleet of sensors whose readings are a stable per-
// sensor canonical value (the GD basis) plus occasional single-bit noise
// in the low-order bits, with the canonical value drifting slowly across
// the day. The three knobs that matter for reproduction:
//   * sensor_count controls LZ77 temporal locality (the gzip baseline);
//   * drift spreads new bases across the trace (the dynamic-learning
//     penalty of Fig. 3);
//   * noise keeps chunks within Hamming distance 1 of their basis (the GD
//     compression ratio itself is insensitive to noise).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "gd/params.hpp"

namespace zipline::trace {

struct SyntheticSensorConfig {
  gd::GdParams params;  ///< chunk geometry (default: paper's 256-bit chunks)
  /// Total chunks; the paper's dataset size.
  std::uint64_t chunk_count = 3'124'000;
  /// Concurrently active sensors (interleaved round-robin with jitter).
  std::size_t sensor_count = 50;
  /// Sensors report in batches (buffered telemetry): this many consecutive
  /// readings per sensor turn. Bursts concentrate a fresh basis's packets
  /// inside the control plane's learning window, which is what produces
  /// the paper's static-vs-dynamic gap in Fig. 3.
  std::uint64_t burst_length = 16;
  /// Each sensor's canonical value drifts to a fresh basis after this many
  /// of its own readings; total distinct bases ~= chunk_count / drift_every.
  std::uint64_t drift_every = 1000;
  /// Single-bit noise: probability a reading deviates from the canonical
  /// value, and the width of the low-order window the flipped bit lives in.
  double noise_probability = 0.9;
  std::size_t noise_window_bits = 48;
  std::uint64_t seed = 42;
};

/// One payload per chunk, each params.raw_payload_bytes() long.
[[nodiscard]] std::vector<std::vector<std::uint8_t>> generate_synthetic_sensor(
    const SyntheticSensorConfig& config);

/// Writes payloads as an Ethernet pcap trace (one packet per payload),
/// paced at `pps`; returns the number of records written.
std::uint64_t write_payloads_pcap(const std::string& path,
                                  const std::vector<std::vector<std::uint8_t>>&
                                      payloads,
                                  double pps);

/// Reads packet payloads back out of a pcap trace.
[[nodiscard]] std::vector<std::vector<std::uint8_t>> read_payloads_pcap(
    const std::string& path);

/// Flattens payloads into one buffer (the "regular file" the paper feeds
/// to gzip).
[[nodiscard]] std::vector<std::uint8_t> concatenate(
    const std::vector<std::vector<std::uint8_t>>& payloads);

}  // namespace zipline::trace
