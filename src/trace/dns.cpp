#include "trace/dns.hpp"

#include <array>
#include <cstdio>

#include "common/contracts.hpp"
#include "common/rng.hpp"

namespace zipline::trace {

namespace {

/// Builds the invariant 32 bytes of a query for name index `i`:
/// DNS header without the transaction id (flags, counts) + question.
std::array<std::uint8_t, 32> query_template(std::size_t name_index) {
  std::array<std::uint8_t, 32> q{};
  std::size_t off = 0;
  // Header (minus the 2-byte transaction id): flags = 0x0100 (RD),
  // QDCOUNT=1, ANCOUNT=NSCOUNT=ARCOUNT=0.
  q[off++] = 0x01;
  q[off++] = 0x00;
  q[off++] = 0x00;
  q[off++] = 0x01;
  off += 6;  // zero counts
  // QNAME: "hNNNN.campus.edu" style, fixed-width label so every query is
  // exactly 34 B like the paper's filtered capture.
  char host[8];
  std::snprintf(host, sizeof host, "h%04zu", name_index % 10000);
  q[off++] = 5;  // label length
  for (int i = 0; i < 5; ++i) q[off++] = static_cast<std::uint8_t>(host[i]);
  static constexpr char campus[] = "campus";
  q[off++] = 6;
  for (const char c : campus) {
    if (c != '\0') q[off++] = static_cast<std::uint8_t>(c);
  }
  static constexpr char edu[] = "edu";
  q[off++] = 3;
  for (const char c : edu) {
    if (c != '\0') q[off++] = static_cast<std::uint8_t>(c);
  }
  q[off++] = 0;  // root label
  // QTYPE = A (1), QCLASS = IN (1).
  q[off++] = 0x00;
  q[off++] = 0x01;
  q[off++] = 0x00;
  q[off++] = 0x01;
  ZL_ASSERT(off == 32);
  return q;
}

}  // namespace

std::vector<std::vector<std::uint8_t>> generate_dns_queries(
    const DnsTraceConfig& config) {
  ZL_EXPECTS(config.name_count >= 1);
  Rng rng(config.seed);
  ZipfSampler zipf(config.name_count, config.zipf_exponent);

  // Precompute templates.
  std::vector<std::array<std::uint8_t, 32>> templates;
  templates.reserve(config.name_count);
  for (std::size_t i = 0; i < config.name_count; ++i) {
    templates.push_back(query_template(i));
  }

  std::vector<std::vector<std::uint8_t>> queries;
  queries.reserve(config.query_count);
  for (std::uint64_t i = 0; i < config.query_count; ++i) {
    const std::size_t name = zipf.sample(rng);
    std::vector<std::uint8_t> q(kDnsQueryBytes);
    const auto txid = static_cast<std::uint16_t>(rng.next_u64());
    q[0] = static_cast<std::uint8_t>(txid >> 8);
    q[1] = static_cast<std::uint8_t>(txid & 0xFF);
    const auto& tpl = templates[name];
    std::copy(tpl.begin(), tpl.end(), q.begin() + 2);
    queries.push_back(std::move(q));
  }
  return queries;
}

std::vector<std::vector<std::uint8_t>> strip_transaction_ids(
    const std::vector<std::vector<std::uint8_t>>& queries) {
  std::vector<std::vector<std::uint8_t>> out;
  out.reserve(queries.size());
  for (const auto& q : queries) {
    ZL_EXPECTS(q.size() == kDnsQueryBytes);
    out.emplace_back(q.begin() + 2, q.end());
  }
  return out;
}

}  // namespace zipline::trace
