#include "trace/synthetic.hpp"

#include "common/contracts.hpp"
#include "common/rng.hpp"
#include "gd/transform.hpp"
#include "net/ethernet.hpp"
#include "net/pcap.hpp"

namespace zipline::trace {

std::vector<std::vector<std::uint8_t>> generate_synthetic_sensor(
    const SyntheticSensorConfig& config) {
  config.params.validate();
  ZL_EXPECTS(config.sensor_count >= 1);
  ZL_EXPECTS(config.drift_every >= 1);
  ZL_EXPECTS(config.noise_window_bits >= 1 &&
             config.noise_window_bits <= config.params.n());
  const gd::GdTransform transform(config.params);
  Rng rng(config.seed);

  struct Sensor {
    bits::BitVector canonical;  ///< codeword-backed chunk (syndrome 0)
    std::uint64_t readings_until_drift = 0;
  };

  auto fresh_canonical = [&] {
    bits::BitVector chunk(config.params.chunk_bits);
    for (std::size_t b = 0; b < config.params.chunk_bits; ++b) {
      if (rng.next_bool(0.5)) chunk.set(b);
    }
    // Snap to the nearest codeword so noise stays within one basis.
    const gd::TransformedChunk tc = transform.forward(chunk);
    return transform.inverse(tc.excess, tc.basis, /*syndrome=*/0);
  };

  std::vector<Sensor> sensors(config.sensor_count);
  for (auto& sensor : sensors) {
    sensor.canonical = fresh_canonical();
    // Stagger the first drift so bases do not arrive in bursts.
    sensor.readings_until_drift = 1 + rng.next_below(config.drift_every);
  }

  ZL_EXPECTS(config.burst_length >= 1);
  std::vector<std::vector<std::uint8_t>> payloads;
  payloads.reserve(config.chunk_count);
  std::size_t sensor_turn = 0;
  while (payloads.size() < config.chunk_count) {
    // Burst arrival: each sensor flushes a batch of buffered readings in
    // one turn, cycling through the fleet — the temporal locality a day of
    // batched telemetry has.
    Sensor& sensor = sensors[sensor_turn % sensors.size()];
    ++sensor_turn;
    // Drift happens between bursts (the value moved while readings were
    // buffered), so a fresh basis always opens a full burst.
    if (sensor.readings_until_drift < config.burst_length) {
      sensor.canonical = fresh_canonical();
      sensor.readings_until_drift = config.drift_every;
    }
    sensor.readings_until_drift -= config.burst_length;
    for (std::uint64_t b = 0;
         b < config.burst_length && payloads.size() < config.chunk_count;
         ++b) {
      bits::BitVector reading = sensor.canonical;
      if (rng.next_bool(config.noise_probability)) {
        reading.flip(rng.next_below(config.noise_window_bits));
      }
      payloads.push_back(reading.to_bytes());
    }
  }
  return payloads;
}

std::uint64_t write_payloads_pcap(
    const std::string& path,
    const std::vector<std::vector<std::uint8_t>>& payloads, double pps) {
  ZL_EXPECTS(pps > 0);
  net::PcapWriter writer(path);
  const double gap_us = 1e6 / pps;
  double t = 0;
  for (const auto& payload : payloads) {
    net::EthernetFrame frame;
    frame.dst = net::MacAddress::local(2);
    frame.src = net::MacAddress::local(1);
    frame.ether_type = 0x5A01;
    frame.payload = payload;
    writer.write_frame(frame, static_cast<std::uint64_t>(t));
    t += gap_us;
  }
  return writer.records_written();
}

std::vector<std::vector<std::uint8_t>> read_payloads_pcap(
    const std::string& path) {
  net::PcapReader reader(path);
  std::vector<std::vector<std::uint8_t>> payloads;
  while (auto record = reader.next()) {
    net::EthernetFrame frame = net::EthernetFrame::parse(record->data);
    payloads.push_back(std::move(frame.payload));
  }
  return payloads;
}

std::vector<std::uint8_t> concatenate(
    const std::vector<std::vector<std::uint8_t>>& payloads) {
  std::size_t total = 0;
  for (const auto& p : payloads) total += p.size();
  std::vector<std::uint8_t> out;
  out.reserve(total);
  for (const auto& p : payloads) out.insert(out.end(), p.begin(), p.end());
  return out;
}

}  // namespace zipline::trace
