// §7 "Dynamic learning" reproduction: the time between the arrival of an
// unknown basis at the switch and the moment compressed packets start to
// be produced.
//
// Method, as in the paper: repeatedly send the same data packet as fast as
// possible from one server to another; capture at the destination; measure
// the gap between the first type-2 (uncompressed) and the first type-3
// (compressed) packet. The paper reports 1.77 ± 0.08 ms; the control-plane
// latency model is calibrated stage by stage in DESIGN.md (digest export,
// CP processing, decoder-side install, encoder-side install).
//
// Usage: bench_learning [--quick]

#include <cstdio>
#include <cstring>

#include "sim/testbed.hpp"

int main(int argc, char** argv) {
  using namespace zipline;
  const bool quick = argc > 1 && std::strcmp(argv[1], "--quick") == 0;
  const std::uint64_t repetitions = quick ? 3 : 10;

  std::printf("=== Dynamic learning latency (first type-2 -> first type-3)"
              " ===\n");
  std::printf("paper: (1.77 ± 0.08) ms over 10 repetitions\n\n");
  const auto result = sim::run_learning(repetitions);
  std::printf("measured: (%.2f ± %.2f) ms over %zu repetitions\n",
              result.learning_ms.mean, result.learning_ms.ci95_half_width,
              result.samples_ms.size());
  std::printf("samples:");
  for (const double s : result.samples_ms) std::printf(" %.3f", s);
  std::printf(" ms\n");

  // Decompose the pipeline for the reader.
  const prog::ControlPlaneTiming timing;
  std::printf("\nmodel decomposition: digest export %.2f ms + CP processing"
              " %.2f ms\n  + decoder install %.2f ms + encoder install %.2f"
              " ms = %.2f ms nominal\n",
              to_ms(timing.digest_export), to_ms(timing.processing),
              to_ms(timing.install_decoder), to_ms(timing.install_encoder),
              to_ms(timing.total()));
  return 0;
}
