// Ablation: identifier width t (paper §7 picks t = 15 so that identifier
// plus the spare MSB bit is exactly 2 bytes, caching 2^15 = 32,768 bases).
//
// The sweep runs the same sensor workload against dictionaries of 2^t
// entries. When the working set of bases exceeds the dictionary, LRU
// recycling starts evicting still-hot entries and every re-learned basis
// costs an uncompressed packet — the compression ratio degrades sharply at
// the capacity cliff.

#include <cstdio>

#include "gd/codec.hpp"
#include "trace/synthetic.hpp"

int main() {
  using namespace zipline;
  std::printf("=== Ablation: identifier width t (paper picks t = 15) ===\n\n");

  // A workload with ~2000 distinct bases spread over the trace.
  trace::SyntheticSensorConfig trace_config;
  trace_config.chunk_count = 500000;
  trace_config.drift_every = 250;  // ~2000 bases
  const auto payloads = trace::generate_synthetic_sensor(trace_config);

  std::printf("%-3s %-10s %-9s %-10s %-10s %-10s %s\n", "t", "capacity",
              "type3 B", "ratio", "evictions", "misses", "note");
  for (const std::size_t t : {5, 7, 9, 11, 13, 15, 19}) {
    gd::GdParams params;
    params.id_bits = t;
    params.validate();
    gd::GdEncoder encoder{params};
    for (const auto& p : payloads) {
      (void)encoder.encode_chunk(bits::BitVector::from_bytes(p, 256));
    }
    const auto& stats = encoder.stats();
    const auto& dict = encoder.dictionary().stats();
    std::printf("%-3zu %-10zu %-9zu %-10.3f %-10llu %-10llu %s\n", t,
                params.dictionary_capacity(), params.type3_payload_bytes(),
                stats.compression_ratio(),
                static_cast<unsigned long long>(dict.evictions),
                static_cast<unsigned long long>(dict.misses),
                t == 15 ? "<- paper's choice" : "");
  }
  std::printf("\ncapacity must cover the *active* working set (~50 concurrent"
              " sensors here):\nbelow it the dictionary thrashes (t=5);"
              " right above it, smaller identifiers\nactually win because"
              " type-3 packets shrink (t=7). The paper picks t=15 for\nbyte"
              " alignment with the spare MSB bit plus capacity headroom for"
              " traffic it\ncannot predict; past that, extra identifier bits"
              " only grow the packet (t=19).\n");
  return 0;
}
