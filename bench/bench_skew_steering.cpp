// Skew-sensitivity sweep for the flow-steering policies (ROADMAP item).
//
// Real traffic is Zipf-skewed: a handful of elephant flows dominate. A
// static flow % workers pin strands the pool behind whichever worker
// drew the elephants; power-of-two-choices placement spreads the load at
// flow-arrival time, and work stealing rebalances at unit granularity
// (legal precisely because the shared dictionary makes any-core-any-flow
// correct — see engine/parallel.hpp). This bench quantifies that story:
// encode throughput of a shared-dictionary zipline::Node across the Zipf
// exponent s (0 = uniform, 1.4 = heavily skewed) for each steering
// arrangement, on a fixed 4-worker pool.
//
// Every row is appended to BENCH_skew_steering.json (one object per row)
// so the skew curve is tracked PR-over-PR alongside the other BENCH_*
// artifacts. On a single-core host the arrangements converge — the
// interesting signal needs real cores.
//
// Usage: bench_skew_steering [--quick]

#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "bench_guard.hpp"
#include "common/rng.hpp"
#include "io/node.hpp"
#include "sim/stats.hpp"

namespace {

using namespace zipline;

/// Zipf(s) CDF sampler over `n` flows (s = 0 degenerates to uniform).
class Zipf {
 public:
  Zipf(std::size_t n, double s) {
    cdf_.reserve(n);
    double total = 0;
    for (std::size_t k = 1; k <= n; ++k) {
      total += 1.0 / std::pow(static_cast<double>(k), s);
      cdf_.push_back(total);
    }
    for (double& c : cdf_) c /= total;
  }

  std::uint32_t operator()(Rng& rng) const {
    const double u = rng.next_double();
    for (std::size_t i = 0; i < cdf_.size(); ++i) {
      if (u <= cdf_[i]) return static_cast<std::uint32_t>(i);
    }
    return static_cast<std::uint32_t>(cdf_.size() - 1);
  }

 private:
  std::vector<double> cdf_;
};

struct Workload {
  io::Burst burst;
  std::size_t total_bytes = 0;
};

/// One burst of `units` payloads, flows drawn Zipf(s) over `flows`,
/// chunks drawn from a shared redundant pool (hits + misses + evictions,
/// and cross-flow dedup for the one shared table).
Workload make_workload(double s, std::size_t units, std::size_t flows,
                       std::size_t chunks_per_unit) {
  const gd::GdParams params;
  const std::size_t chunk_bytes = params.raw_payload_bytes();
  Rng rng(0x5E3D + static_cast<std::uint64_t>(s * 1000));
  const Zipf zipf(flows, s);
  std::vector<std::vector<std::uint8_t>> pool;
  for (int i = 0; i < 64; ++i) {
    std::vector<std::uint8_t> chunk(chunk_bytes);
    for (auto& b : chunk) b = static_cast<std::uint8_t>(rng.next_u64());
    pool.push_back(chunk);
  }
  Workload w;
  std::vector<std::uint8_t> payload;
  for (std::size_t u = 0; u < units; ++u) {
    payload.clear();
    for (std::size_t c = 0; c < chunks_per_unit; ++c) {
      auto chunk = pool[rng.next_below(pool.size())];
      if (rng.next_bool(0.25)) {
        chunk[rng.next_below(chunk.size())] ^=
            static_cast<std::uint8_t>(1u << rng.next_below(8));
      }
      payload.insert(payload.end(), chunk.begin(), chunk.end());
    }
    io::PacketMeta meta;
    meta.flow = zipf(rng);
    w.burst.append(gd::PacketType::raw, 0, 0, payload, meta);
    w.total_bytes += payload.size();
  }
  return w;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace zipline;
  const bool quick = argc > 1 && std::strcmp(argv[1], "--quick") == 0;
  const int repetitions = quick ? 3 : 7;
  const std::size_t units = quick ? 192 : 512;
  constexpr std::size_t kWorkers = 4;
  constexpr std::size_t kFlows = 32;
  constexpr std::size_t kChunksPerUnit = 128;

  struct Policy {
    const char* name;
    engine::FlowSteering steering;
    bool steal;
  };
  const Policy policies[] = {
      {"pinned", engine::FlowSteering::pinned, false},
      {"p2c", engine::FlowSteering::load_aware, false},
      {"p2c+steal", engine::FlowSteering::load_aware, true},
  };
  const double exponents[] = {0.0, 0.8, 1.1, 1.4};

  bench::require_release_build("bench_skew_steering");
  std::vector<std::string> rows;
  {
    char meta[256];
    std::snprintf(meta, sizeof meta,
                  "{\"section\": \"meta\", \"zipline_build_type\": "
                  "\"%s\", \"zipline_simd_kernel\": \"%s\"}",
                  bench::build_type(), bench::simd_kernel_name());
    rows.push_back(meta);
  }
  std::printf("=== skew sensitivity: shared-dictionary node, %zu workers,"
              " %zu flows ===\n",
              kWorkers, kFlows);
  std::printf("(s = Zipf exponent of the flow distribution; 0 = uniform."
              " Output is byte-identical\nacross policies — the ordered"
              " resolve turnstile — so this is purely a scheduling"
              " sweep.)\n\n");
  std::printf("%-12s %-6s %12s %12s\n", "policy", "s", "MB/s", "±CI95");
  for (const double s : exponents) {
    const Workload workload =
        make_workload(s, units, kFlows, kChunksPerUnit);
    for (const Policy& policy : policies) {
      io::NodeOptions options;
      options.workers = kWorkers;
      options.ownership = engine::DictionaryOwnership::shared;
      options.steering = policy.steering;
      options.work_stealing = policy.steal;
      io::Node node(options);
      io::Burst out;
      out.clear();
      node.process(workload.burst, out);  // warmup: learn + arenas
      std::vector<double> mbps;
      for (int rep = 0; rep < repetitions; ++rep) {
        const auto start = std::chrono::steady_clock::now();
        out.clear();
        node.process(workload.burst, out);
        const auto stop = std::chrono::steady_clock::now();
        const double secs =
            std::chrono::duration<double>(stop - start).count();
        mbps.push_back(static_cast<double>(workload.total_bytes) / secs /
                       1e6);
      }
      const auto summary = sim::summarize(mbps);
      std::printf("%-12s %-6.1f %12.1f %12.1f\n", policy.name, s,
                  summary.mean, summary.ci95_half_width);
      char row[256];
      std::snprintf(row, sizeof row,
                    "{\"section\": \"skew_steering\", \"policy\": \"%s\", "
                    "\"zipf_s\": %.2f, \"workers\": %zu, \"flows\": %zu, "
                    "\"mbps\": %.2f, \"mbps_ci95\": %.2f}",
                    policy.name, s, kWorkers, kFlows, summary.mean,
                    summary.ci95_half_width);
      rows.push_back(row);
    }
  }

  std::FILE* f = std::fopen("BENCH_skew_steering.json", "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot write BENCH_skew_steering.json\n");
    return 1;
  }
  std::fprintf(f, "[\n");
  for (std::size_t i = 0; i < rows.size(); ++i) {
    std::fprintf(f, "  %s%s\n", rows[i].c_str(),
                 i + 1 < rows.size() ? "," : "");
  }
  std::fprintf(f, "]\n");
  std::fclose(f);
  std::printf("\nwrote BENCH_skew_steering.json\n");
  return 0;
}
