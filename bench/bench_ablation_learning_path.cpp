// Ablation: where learning happens (paper §6 "Lessons learned").
//
// The paper's first design kept basis-ID state in data-plane registers:
// line rate with "virtually instantaneous learning", but constant-time
// constraints rule out real LRU and hash-slot collisions silently evict.
// The shipped design moves learning to the control plane: proper LRU via
// TTLs, at the cost of ~1.77 ms during which packets stay uncompressed.
//
// This bench runs the same bursty sensor trace through all three paths and
// reports compression plus the learning latency each path implies.

#include <cstdio>

#include "sim/replay.hpp"
#include "sim/testbed.hpp"
#include "trace/synthetic.hpp"

int main() {
  using namespace zipline;
  std::printf("=== Ablation: control-plane vs data-plane learning (§6) ===\n\n");

  trace::SyntheticSensorConfig trace_config;
  trace_config.chunk_count = 500000;
  const auto payloads = trace::generate_synthetic_sensor(trace_config);

  struct Case {
    const char* name;
    sim::TableMode table_mode;
    prog::LearningMode learning;
  };
  const Case cases[] = {
      {"static (preloaded)", sim::TableMode::static_,
       prog::LearningMode::none},
      {"control plane", sim::TableMode::dynamic,
       prog::LearningMode::control_plane},
      {"data-plane registers", sim::TableMode::dynamic,
       prog::LearningMode::data_plane},
  };

  std::printf("%-22s %-9s %-12s %-12s %s\n", "learning path", "ratio",
              "type2 pkts", "type3 pkts", "learning latency");
  for (const auto& c : cases) {
    sim::ReplayConfig config;
    config.table_mode = c.table_mode;
    config.switch_config.learning = c.learning;
    config.replay_pps = 10000.0;
    sim::TraceReplay replay(config);
    // The register path needs the learning mode forced through the switch
    // config (TraceReplay derives it from table_mode otherwise).
    const auto result = replay.replay(payloads);
    const char* latency = c.learning == prog::LearningMode::control_plane
                              ? "~1.77 ms (measured below)"
                          : c.table_mode == sim::TableMode::static_
                              ? "n/a (preloaded)"
                              : "one packet (instant)";
    std::printf("%-22s %-9.3f %-12llu %-12llu %s\n", c.name, result.ratio(),
                static_cast<unsigned long long>(result.type2_packets),
                static_cast<unsigned long long>(result.type3_packets),
                latency);
  }

  const auto learning = sim::run_learning(5);
  std::printf("\ncontrol-plane learning latency: (%.2f ± %.2f) ms"
              " [paper: 1.77 ± 0.08 ms]\n", learning.learning_ms.mean,
              learning.learning_ms.ci95_half_width);
  std::printf("\nregister learning is instant but hash-slot collisions evict"
              " silently and no\ntrue LRU is possible in constant time —"
              " why the paper moved to the control plane.\n");
  return 0;
}
