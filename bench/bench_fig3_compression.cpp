// Figure 3 reproduction: resulting payload size after traffic is processed
// with Gzip and ZipLine, without, with static-, and with dynamically
// learned compression-table mappings — on the synthetic sensor dataset
// (3,124,000 x 256-bit chunks, ~100 MB) and the DNS-query dataset (~25 MB
// of 34 B queries, transaction IDs excluded by the paper's filter).
//
// Output: one row per (dataset, treatment) with the absolute size and the
// ratio to the original, in the same order as the paper's figure. An
// additional exact-deduplication row quantifies the gap between classic
// dedup and GD (paper §2's motivation).
//
// Usage: bench_fig3_compression [--quick]
//   --quick   run at 1/10 scale (for smoke testing)

#include <cstdio>
#include <cstring>
#include <string>

#include "baseline/dedup.hpp"
#include "baseline/deflate.hpp"
#include "common/hexdump.hpp"
#include "gd/transform.hpp"
#include "sim/replay.hpp"
#include "trace/dns.hpp"
#include "trace/synthetic.hpp"

namespace {

using namespace zipline;

struct Row {
  std::string label;
  double bytes;
  double ratio;
};

void print_dataset(const std::string& title, double original_bytes,
                   const std::vector<Row>& rows) {
  std::printf("\n%s (original: %s)\n", title.c_str(),
              format_size(original_bytes).c_str());
  std::printf("  %-18s %14s %8s\n", "treatment", "resulting size", "ratio");
  for (const auto& row : rows) {
    std::printf("  %-18s %14s %8s\n", row.label.c_str(),
                format_size(row.bytes).c_str(),
                format_ratio(row.ratio).c_str());
  }
}

sim::ReplayResult run_replay(const std::vector<std::vector<std::uint8_t>>&
                                 payloads,
                             sim::TableMode mode, double replay_pps) {
  sim::ReplayConfig config;
  config.table_mode = mode;
  config.replay_pps = replay_pps;
  sim::TraceReplay replay(config);
  return replay.replay(payloads);
}

std::vector<Row> evaluate(const std::vector<std::vector<std::uint8_t>>&
                              payloads,
                          double replay_pps, bool include_static) {
  std::vector<Row> rows;
  double original = 0;
  for (const auto& p : payloads) original += static_cast<double>(p.size());
  rows.push_back({"original data", original, 1.0});

  const auto no_table = run_replay(payloads, sim::TableMode::none, replay_pps);
  rows.push_back({"no table", static_cast<double>(no_table.output_bytes),
                  no_table.ratio()});

  if (include_static) {
    const auto statict =
        run_replay(payloads, sim::TableMode::static_, replay_pps);
    rows.push_back({"static table", static_cast<double>(statict.output_bytes),
                    statict.ratio()});
  } else {
    rows.push_back({"static table", 0, 0});  // n/a, as in the paper
  }

  const auto dynamic =
      run_replay(payloads, sim::TableMode::dynamic, replay_pps);
  rows.push_back({"dynamic learning",
                  static_cast<double>(dynamic.output_bytes), dynamic.ratio()});

  const auto flat = trace::concatenate(payloads);
  const auto gz = baseline::gzip_compress(flat);
  rows.push_back({"gzip", static_cast<double>(gz.size()),
                  static_cast<double>(gz.size()) /
                      static_cast<double>(flat.size())});

  // Extra baseline (not in the paper's figure): classic exact dedup with
  // the same dictionary budget.
  baseline::ExactDedup dedup{gd::GdParams{}};
  for (const auto& p : payloads) {
    if (p.size() == 32) {
      (void)dedup.process_chunk(bits::BitVector::from_bytes(p, 256));
    }
  }
  rows.push_back({"exact dedup*",
                  static_cast<double>(dedup.stats().bytes_out),
                  dedup.stats().compression_ratio()});
  return rows;
}

}  // namespace

int main(int argc, char** argv) {
  const bool quick = argc > 1 && std::strcmp(argv[1], "--quick") == 0;
  const double scale = quick ? 0.1 : 1.0;
  // pcap replay pacing; the paper does not state its replay rate — this
  // value is calibrated so the dynamic-learning penalty lands in the
  // paper's measured band (see DESIGN.md).
  const double replay_pps = 10000.0;

  std::printf("=== Figure 3: resulting payload size ===\n");
  std::printf("paper reference: synthetic 1.00/1.03/0.09/0.11/0.09,"
              " DNS 1.00/1.03/n-a/0.10/0.08\n");

  {
    trace::SyntheticSensorConfig config;
    config.chunk_count =
        static_cast<std::uint64_t>(3124000 * scale);
    const auto payloads = trace::generate_synthetic_sensor(config);
    const auto rows = evaluate(payloads, replay_pps, /*include_static=*/true);
    print_dataset("Synthetic dataset", rows[0].bytes, rows);
  }
  {
    trace::DnsTraceConfig config;
    config.query_count = static_cast<std::uint64_t>(735000 * scale);
    const auto queries = trace::generate_dns_queries(config);
    // The paper's preprocessing: keep 34 B queries, drop the random
    // transaction identifier -> 32 B effective payloads.
    const auto payloads = trace::strip_transaction_ids(queries);
    // The paper reports "n/a" for the static table on this dataset.
    const auto rows = evaluate(payloads, replay_pps, /*include_static=*/false);
    print_dataset("DNS queries", rows[0].bytes, rows);
    std::printf("  (static table reported n/a, as in the paper)\n");
  }
  std::printf("\n* exact dedup: additional baseline, not in the paper's"
              " figure\n");
  return 0;
}
