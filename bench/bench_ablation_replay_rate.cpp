// Ablation: replay rate vs dynamic-learning compression (Fig. 3 context).
//
// The paper does not state the rate at which its traces were replayed,
// yet the dynamic-learning ratio depends on it directly: every new basis
// stays uncompressed for ~1.77 ms of control-plane latency, so the number
// of wasted packets per basis scales with the packet rate. This sweep
// makes the dependency explicit and shows where our calibrated 10 kpkt/s
// (DESIGN.md) sits.

#include <cstdio>

#include "sim/replay.hpp"
#include "trace/synthetic.hpp"

int main() {
  using namespace zipline;
  std::printf("=== Ablation: dynamic-learning ratio vs replay rate ===\n\n");

  trace::SyntheticSensorConfig trace_config;
  trace_config.chunk_count = 300000;
  const auto payloads = trace::generate_synthetic_sensor(trace_config);

  std::printf("%-12s %-10s %-12s %-14s\n", "replay pps", "ratio",
              "type2 pkts", "pkts/basis lost");
  for (const double pps : {1000.0, 5000.0, 10000.0, 50000.0, 200000.0}) {
    sim::ReplayConfig config;
    config.table_mode = sim::TableMode::dynamic;
    config.replay_pps = pps;
    sim::TraceReplay replay(config);
    const auto result = replay.replay(payloads);
    const double lost_per_basis =
        result.bases_learned == 0
            ? 0.0
            : static_cast<double>(result.type2_packets) /
                  static_cast<double>(result.bases_learned);
    std::printf("%-12.0f %-10.3f %-12llu %-14.1f %s\n", pps, result.ratio(),
                static_cast<unsigned long long>(result.type2_packets),
                lost_per_basis,
                pps == 10000.0 ? "<- Fig. 3 calibration" : "");
  }
  std::printf("\nhigher replay rates push more packets into each ~1.77 ms"
              " learning window,\nuntil the loss per basis saturates at the"
              " sensor burst length (16 here): the\nrest of a fresh basis's"
              " packets arrive in later bursts, after learning has\n"
              "finished. The static-table ratio (0.094) is the floor at any"
              " rate.\n");
  return 0;
}
