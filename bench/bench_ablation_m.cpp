// Ablation: Hamming order m (paper §7 "Choice of parameters" and §8).
//
// The paper fixes m = 8 because it is the largest byte-aligned syndrome
// that fits the hardware. This sweep shows what the choice costs and buys:
// for each m, the chunk geometry (n, k), the per-packet sizes of types 2
// and 3, the padding overhead when m is not byte aligned, and the achieved
// compression on a sensor workload regenerated with matching chunk size.
// Larger m folds more noise into one basis (each basis absorbs n one-bit
// deviations) but enlarges the chunk a packet must carry.

#include <cstdio>

#include "gd/codec.hpp"
#include "trace/synthetic.hpp"

int main() {
  using namespace zipline;
  std::printf("=== Ablation: Hamming order m (paper picks m = 8) ===\n\n");
  std::printf("%-3s %-6s %-6s %-7s %-8s %-8s %-10s %-10s %s\n", "m", "n",
              "k", "chunk", "type2 B", "type3 B", "pad bits", "ratio",
              "note");
  for (int m = 4; m <= 12; ++m) {
    gd::GdParams params;
    params.m = m;
    // Chunk: the codeword rounded up to whole bytes (excess bits carried
    // verbatim), mirroring the paper's 255 -> 256-bit choice.
    params.chunk_bits = (params.n() + 7) / 8 * 8;
    params.id_bits = std::min<std::size_t>(15, params.k() - 1);
    // Container-alignment model: the (syndrome + excess) fields and the
    // basis field occupy separate byte-aligned containers. At m = 8 this
    // yields exactly the 8 padding bits the paper measured (33 B type 2).
    params.model_tofino_padding = true;
    const std::size_t head_bits =
        static_cast<std::size_t>(m) + params.excess_bits();
    const std::size_t container_bits =
        (head_bits + 7) / 8 * 8 + (params.k() + 7) / 8 * 8;
    params.type2_extra_pad_bits =
        container_bits - (head_bits + params.k());
    params.validate();

    trace::SyntheticSensorConfig trace_config;
    trace_config.params = params;
    trace_config.chunk_count = 200000;
    trace_config.noise_window_bits =
        std::min<std::size_t>(48, params.n() - 1);
    const auto payloads = trace::generate_synthetic_sensor(trace_config);

    gd::GdEncoder encoder{params};
    for (const auto& p : payloads) {
      (void)encoder.encode_chunk(
          bits::BitVector::from_bytes(p, params.chunk_bits));
    }
    const auto& stats = encoder.stats();
    std::printf("%-3d %-6zu %-6zu %-7zu %-8zu %-8zu %-10zu %-10.3f %s\n", m,
                params.n(), params.k(), params.chunk_bits,
                params.type2_payload_bytes(), params.type3_payload_bytes(),
                params.type2_extra_pad_bits, stats.compression_ratio(),
                m == 8 ? "<- paper's choice" : "");
  }
  std::printf("\nsmaller m: more packets per byte (worse header amortization);"
              "\nlarger m: bigger chunks, fewer syndrome bits per data bit"
              " -> better ratio,\nbut 2^m-1 is byte-aligned only near m=8 on"
              " this hardware model.\n");
  return 0;
}
