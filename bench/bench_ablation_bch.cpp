// Ablation: BCH(255,239,t=2) as the GD transform — the paper's §8 future
// work, implemented ("These allow for more chunks to be mapped to each
// basis, albeit at the cost of a larger deviation in bits").
//
// Workloads with increasing per-reading noise weight (0-2 flipped bits per
// chunk) are encoded with both transforms under identical dictionary
// budgets. Hamming folds only 1-bit noise into a basis, so 2-bit noise
// explodes its basis population; BCH absorbs it at +1 byte of deviation
// per packet.

#include <cstdio>
#include <unordered_set>

#include "common/rng.hpp"
#include "gd/dictionary.hpp"
#include "hamming/bch.hpp"
#include "hamming/hamming.hpp"

namespace {

using namespace zipline;
using bits::BitVector;

struct Workload {
  const char* name;
  double p_one_bit;   // probability of >= 1 flipped bit
  double p_two_bits;  // probability the noisy reading has 2 flipped bits
};

struct Result {
  double ratio;
  std::size_t bases;
};

constexpr std::size_t kChunks = 100000;
constexpr std::size_t kSensors = 32;
constexpr std::size_t kIdBits = 15;

// Packet-size accounting per transform: syndrome + 1 excess bit + id/basis.
std::size_t type3_bytes(std::size_t deviation_bits) {
  return (deviation_bits + 1 + kIdBits + 7) / 8;
}
std::size_t type2_bytes(std::size_t deviation_bits, std::size_t k) {
  return (deviation_bits + 1 + k + 7) / 8 + 1;  // + modeled pad byte
}

template <typename Canonicalize>
Result run(const Workload& w, std::uint64_t seed, std::size_t deviation_bits,
           std::size_t k, Canonicalize canonicalize,
           const std::vector<BitVector>& sensor_codewords) {
  Rng rng(seed);
  gd::BasisDictionary dict(std::size_t{1} << kIdBits,
                           gd::EvictionPolicy::lru);
  std::uint64_t bytes_out = 0;
  for (std::size_t i = 0; i < kChunks; ++i) {
    BitVector word = sensor_codewords[i % kSensors];
    if (rng.next_bool(w.p_one_bit)) {
      const std::size_t a = rng.next_below(255);
      word.flip(a);
      if (rng.next_bool(w.p_two_bits)) {
        std::size_t b = rng.next_below(255);
        while (b == a) b = rng.next_below(255);
        word.flip(b);
      }
    }
    const BitVector basis = canonicalize(word);
    if (dict.lookup(basis)) {
      bytes_out += type3_bytes(deviation_bits);
    } else {
      dict.insert(basis);
      bytes_out += type2_bytes(deviation_bits, k);
    }
  }
  return Result{static_cast<double>(bytes_out) /
                    static_cast<double>(kChunks * 32),
                dict.size()};
}

}  // namespace

int main() {
  std::printf("=== Ablation: Hamming(255,247) vs BCH(255,239,t=2) transform"
              " (§8) ===\n\n");
  const hamming::HammingCode hamming_code(8);
  const hamming::Bch255 bch;

  // Shared sensor fleet; both transforms see identical words.
  Rng setup_rng(11);
  std::vector<BitVector> sensors;
  for (std::size_t s = 0; s < kSensors; ++s) {
    BitVector msg(bch.k);
    for (std::size_t i = 0; i < bch.k; ++i) {
      if (setup_rng.next_bool(0.5)) msg.set(i);
    }
    sensors.push_back(bch.encode(msg));  // codewords of BOTH codes' length
  }

  const Workload workloads[] = {
      {"clean (no noise)", 0.0, 0.0},
      {"1-bit noise", 0.9, 0.0},
      {"1-2 bit noise (50/50)", 0.9, 0.5},
      {"2-bit noise", 0.9, 1.0},
  };

  std::printf("%-24s | %-18s | %-18s\n", "", "Hamming (3 B refs)",
              "BCH t=2 (4 B refs)");
  std::printf("%-24s | %-8s %-9s | %-8s %-9s\n", "workload", "ratio",
              "bases", "ratio", "bases");
  for (const auto& w : workloads) {
    const Result h = run(
        w, 99, 8, hamming_code.k(),
        [&](const BitVector& word) {
          return hamming_code.canonicalize(word).basis;
        },
        sensors);
    const Result b = run(
        w, 99, bch.parity_bits, bch.k,
        [&](const BitVector& word) { return bch.canonicalize(word).basis; },
        sensors);
    std::printf("%-24s | %-8.3f %-9zu | %-8.3f %-9zu\n", w.name, h.ratio,
                h.bases, b.ratio, b.bases);
  }
  std::printf("\nunder 2-bit noise Hamming's basis population explodes"
              " (every distinct 2-bit\npattern is a new basis) while BCH"
              " keeps one basis per sensor at +1 B/packet —\nexactly the"
              " trade-off §8 predicts.\n");
  return 0;
}
