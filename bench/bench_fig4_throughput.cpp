// Figure 4 reproduction: observed network throughput in Gbit/s and
// Mpkt/s with the switch performing no op, GD encoding, or GD decoding on
// Ethernet frames of 64 B, 1500 B and 9000 B.
//
// The paper transfers for 10 s per cell and repeats 10 times; we simulate
// shorter steady-state windows (rates converge within milliseconds in the
// discrete-event model) with 10 seeded repetitions, reporting mean ± 95%
// CI. Expected shape (§7): 64 B and 1500 B are bottlenecked around
// 7 Mpkt/s by the traffic-generating server; 9000 B reaches the 100 Gbit/s
// line rate; encode/decode are indistinguishable from no-op because the
// pipeline latency of a compiled Tofino program is constant.
//
// Usage: bench_fig4_throughput [--quick]

#include <cstdio>
#include <cstring>
#include <vector>

#include "sim/stats.hpp"
#include "sim/testbed.hpp"

int main(int argc, char** argv) {
  using namespace zipline;
  const bool quick = argc > 1 && std::strcmp(argv[1], "--quick") == 0;
  const std::uint64_t repetitions = quick ? 3 : 10;
  const SimTime duration = quick ? 10_ms : 50_ms;
  const SimTime warmup = 2_ms;

  const prog::SwitchOp ops[] = {prog::SwitchOp::forward,
                                prog::SwitchOp::encode,
                                prog::SwitchOp::decode};
  const char* op_names[] = {"no op", "encode", "decode"};
  const std::size_t sizes[] = {64, 1500, 9000};

  std::printf("=== Figure 4: throughput by operation and frame size ===\n");
  std::printf("paper shape: 64/1500 B capped ~7 Mpkt/s by the sender;"
              " 9000 B ~line rate; ops identical\n\n");
  std::printf("%-8s %-8s %16s %18s\n", "op", "frame", "Gbit/s (±CI)",
              "Mpkt/s (±CI)");
  for (std::size_t op_idx = 0; op_idx < 3; ++op_idx) {
    for (const std::size_t frame_bytes : sizes) {
      std::vector<double> gbps;
      std::vector<double> mpps;
      for (std::uint64_t rep = 0; rep < repetitions; ++rep) {
        const auto result = sim::run_throughput(
            ops[op_idx], frame_bytes, duration, warmup,
            rep * 131 + op_idx * 17 + 7);
        gbps.push_back(result.gbps);
        mpps.push_back(result.mpps);
      }
      const auto g = sim::summarize(gbps);
      const auto m = sim::summarize(mpps);
      std::printf("%-8s %-8zu %8.2f ±%5.2f %10.3f ±%6.3f\n",
                  op_names[op_idx], frame_bytes, g.mean, g.ci95_half_width,
                  m.mean, m.ci95_half_width);
    }
  }
  std::printf("\n(frame sizes include the 4 B FCS; rates are receiver-side"
              " steady state)\n");

  // Batch companion sweep: the same 64 B GD traffic, staged through the
  // engine batch path at 1/8/64/256 chunks per batch. The switch-side
  // rates stay flat (the pipeline is per-packet); what the sweep shows is
  // the sender cost of payload staging amortizing with batch size.
  std::printf("\n=== Fig. 4 companion: batched GD traffic (64 B frames) ===\n");
  std::printf("%-8s %-8s %16s %18s\n", "op", "batch", "Gbit/s (±CI)",
              "Mpkt/s (±CI)");
  const prog::SwitchOp batch_ops[] = {prog::SwitchOp::encode,
                                      prog::SwitchOp::decode};
  const char* batch_op_names[] = {"encode", "decode"};
  const std::size_t batch_sizes[] = {1, 8, 64, 256};
  for (std::size_t op_idx = 0; op_idx < 2; ++op_idx) {
    for (const std::size_t batch_chunks : batch_sizes) {
      std::vector<double> gbps;
      std::vector<double> mpps;
      for (std::uint64_t rep = 0; rep < repetitions; ++rep) {
        const auto result = sim::run_batch_throughput(
            batch_ops[op_idx], batch_chunks, duration, warmup,
            rep * 263 + op_idx * 29 + 3);
        gbps.push_back(result.gbps);
        mpps.push_back(result.mpps);
      }
      const auto g = sim::summarize(gbps);
      const auto m = sim::summarize(mpps);
      std::printf("%-8s %-8zu %8.2f ±%5.2f %10.3f ±%6.3f\n",
                  batch_op_names[op_idx], batch_chunks, g.mean,
                  g.ci95_half_width, m.mean, m.ci95_half_width);
    }
  }
  return 0;
}
