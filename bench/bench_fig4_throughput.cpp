// Figure 4 reproduction: observed network throughput in Gbit/s and
// Mpkt/s with the switch performing no op, GD encoding, or GD decoding on
// Ethernet frames of 64 B, 1500 B and 9000 B.
//
// The paper transfers for 10 s per cell and repeats 10 times; we simulate
// shorter steady-state windows (rates converge within milliseconds in the
// discrete-event model) with 10 seeded repetitions, reporting mean ± 95%
// CI. Expected shape (§7): 64 B and 1500 B are bottlenecked around
// 7 Mpkt/s by the traffic-generating server; 9000 B reaches the 100 Gbit/s
// line rate; encode/decode are indistinguishable from no-op because the
// pipeline latency of a compiled Tofino program is constant.
//
// A third section sweeps a zipline::Node (io/node.hpp, the facade over
// the engine's worker pool): wall-clock encode throughput across worker
// counts, dictionary-shard counts and dictionary ownership (private
// per-flow vs the shared service, with and without work stealing), plus
// the simulated receiver rate with parallel-staged traffic (flat by
// construction — the switch is per-packet; staging cost is what
// parallelizes).
//
// Every measurement is also appended to BENCH_fig4_throughput.json
// (machine-readable, one object per row) so the perf trajectory can be
// tracked PR-over-PR.
//
// Usage: bench_fig4_throughput [--quick]

#include <chrono>
#include <cstdio>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "bench_guard.hpp"
#include "common/rng.hpp"
#include "io/node.hpp"
#include "sim/stats.hpp"
#include "sim/testbed.hpp"

namespace {

using namespace zipline;

/// Flat JSON row collector: every printed table row is mirrored as one
/// object in BENCH_fig4_throughput.json.
class JsonRows {
 public:
  void add(std::string row) { rows_.push_back(std::move(row)); }

  void write(const char* path) const {
    std::FILE* f = std::fopen(path, "w");
    if (f == nullptr) {
      std::fprintf(stderr, "cannot write %s\n", path);
      return;
    }
    std::fprintf(f, "[\n");
    for (std::size_t i = 0; i < rows_.size(); ++i) {
      std::fprintf(f, "  %s%s\n", rows_[i].c_str(),
                   i + 1 < rows_.size() ? "," : "");
    }
    std::fprintf(f, "]\n");
    std::fclose(f);
  }

 private:
  std::vector<std::string> rows_;
};

std::string json_rate_row(const char* section, const char* op,
                          std::size_t size_key, const char* size_name,
                          const sim::SampleStats& gbps,
                          const sim::SampleStats& mpps) {
  char buf[512];
  std::snprintf(buf, sizeof buf,
                "{\"section\": \"%s\", \"op\": \"%s\", \"%s\": %zu, "
                "\"gbps\": %.4f, \"gbps_ci95\": %.4f, \"mpps\": %.4f, "
                "\"mpps_ci95\": %.4f}",
                section, op, size_name, size_key, gbps.mean,
                gbps.ci95_half_width, mpps.mean, mpps.ci95_half_width);
  return buf;
}

/// Redundant multi-flow workload for the stager sweep, staged as one
/// burst (one packet = one unit = one flow's payload): every flow draws
/// chunks from a small pool with bit noise, so hits, misses and
/// evictions all occur, as in the Fig. 3 traffic.
struct StagerWorkload {
  io::Burst burst;
  std::size_t total_bytes = 0;
};

StagerWorkload make_stager_workload(std::size_t flow_count,
                                    std::size_t units_per_flow,
                                    std::size_t chunks_per_unit,
                                    std::size_t chunk_bytes) {
  Rng rng(0x57A6E);
  std::vector<std::vector<std::uint8_t>> pool;
  for (int i = 0; i < 64; ++i) {
    std::vector<std::uint8_t> chunk(chunk_bytes);
    for (auto& b : chunk) b = static_cast<std::uint8_t>(rng.next_u64());
    pool.push_back(chunk);
  }
  StagerWorkload w;
  std::vector<std::uint8_t> payload;
  for (std::size_t u = 0; u < units_per_flow; ++u) {
    for (std::size_t f = 0; f < flow_count; ++f) {
      payload.clear();
      for (std::size_t c = 0; c < chunks_per_unit; ++c) {
        auto chunk = pool[rng.next_below(pool.size())];
        if (rng.next_bool(0.25)) {
          chunk[rng.next_below(chunk.size())] ^=
              static_cast<std::uint8_t>(1u << rng.next_below(8));
        }
        payload.insert(payload.end(), chunk.begin(), chunk.end());
      }
      w.total_bytes += payload.size();
      io::PacketMeta meta;
      meta.flow = static_cast<std::uint32_t>(f);
      w.burst.append(gd::PacketType::raw, 0, 0, payload, meta);
    }
  }
  return w;
}

/// One timed pass: the whole workload burst through the node (one
/// process() call = submit every unit + flush), return seconds.
double time_stager_pass(io::Node& node, const StagerWorkload& w,
                        io::Burst& out) {
  const auto start = std::chrono::steady_clock::now();
  out.clear();
  node.process(w.burst, out);
  const auto stop = std::chrono::steady_clock::now();
  return std::chrono::duration<double>(stop - start).count();
}

}  // namespace

int main(int argc, char** argv) {
  using namespace zipline;
  const bool quick = argc > 1 && std::strcmp(argv[1], "--quick") == 0;
  const std::uint64_t repetitions = quick ? 3 : 10;
  const SimTime duration = quick ? 10_ms : 50_ms;
  const SimTime warmup = 2_ms;
  bench::require_release_build("bench_fig4_throughput");
  JsonRows json;
  {
    // Leading meta row: which build produced these numbers and which
    // zipline::simd kernel level the data path dispatched to.
    char meta[256];
    std::snprintf(meta, sizeof meta,
                  "{\"section\": \"meta\", \"zipline_build_type\": "
                  "\"%s\", \"zipline_simd_kernel\": \"%s\"}",
                  bench::build_type(), bench::simd_kernel_name());
    json.add(meta);
  }

  const prog::SwitchOp ops[] = {prog::SwitchOp::forward,
                                prog::SwitchOp::encode,
                                prog::SwitchOp::decode};
  const char* op_names[] = {"no op", "encode", "decode"};
  const std::size_t sizes[] = {64, 1500, 9000};

  std::printf("=== Figure 4: throughput by operation and frame size ===\n");
  std::printf("paper shape: 64/1500 B capped ~7 Mpkt/s by the sender;"
              " 9000 B ~line rate; ops identical\n\n");
  std::printf("%-8s %-8s %16s %18s\n", "op", "frame", "Gbit/s (±CI)",
              "Mpkt/s (±CI)");
  for (std::size_t op_idx = 0; op_idx < 3; ++op_idx) {
    for (const std::size_t frame_bytes : sizes) {
      std::vector<double> gbps;
      std::vector<double> mpps;
      for (std::uint64_t rep = 0; rep < repetitions; ++rep) {
        const auto result = sim::run_throughput(
            ops[op_idx], frame_bytes, duration, warmup,
            rep * 131 + op_idx * 17 + 7);
        gbps.push_back(result.gbps);
        mpps.push_back(result.mpps);
      }
      const auto g = sim::summarize(gbps);
      const auto m = sim::summarize(mpps);
      std::printf("%-8s %-8zu %8.2f ±%5.2f %10.3f ±%6.3f\n",
                  op_names[op_idx], frame_bytes, g.mean, g.ci95_half_width,
                  m.mean, m.ci95_half_width);
      json.add(json_rate_row("fig4", op_names[op_idx], frame_bytes,
                             "frame_bytes", g, m));
    }
  }
  std::printf("\n(frame sizes include the 4 B FCS; rates are receiver-side"
              " steady state)\n");

  // Batch companion sweep: the same 64 B GD traffic, staged through the
  // engine batch path at 1/8/64/256 chunks per batch. The switch-side
  // rates stay flat (the pipeline is per-packet); what the sweep shows is
  // the sender cost of payload staging amortizing with batch size.
  std::printf("\n=== Fig. 4 companion: batched GD traffic (64 B frames) ===\n");
  std::printf("%-8s %-8s %16s %18s\n", "op", "batch", "Gbit/s (±CI)",
              "Mpkt/s (±CI)");
  const prog::SwitchOp batch_ops[] = {prog::SwitchOp::encode,
                                      prog::SwitchOp::decode};
  const char* batch_op_names[] = {"encode", "decode"};
  const std::size_t batch_sizes[] = {1, 8, 64, 256};
  for (std::size_t op_idx = 0; op_idx < 2; ++op_idx) {
    for (const std::size_t batch_chunks : batch_sizes) {
      std::vector<double> gbps;
      std::vector<double> mpps;
      for (std::uint64_t rep = 0; rep < repetitions; ++rep) {
        const auto result = sim::run_batch_throughput(
            batch_ops[op_idx], batch_chunks, duration, warmup,
            rep * 263 + op_idx * 29 + 3);
        gbps.push_back(result.gbps);
        mpps.push_back(result.mpps);
      }
      const auto g = sim::summarize(gbps);
      const auto m = sim::summarize(mpps);
      std::printf("%-8s %-8zu %8.2f ±%5.2f %10.3f ±%6.3f\n",
                  batch_op_names[op_idx], batch_chunks, g.mean,
                  g.ci95_half_width, m.mean, m.ci95_half_width);
      json.add(json_rate_row("fig4_batch", batch_op_names[op_idx],
                             batch_chunks, "batch_chunks", g, m));
    }
  }

  // Multi-core stager sweep: wall-clock encode throughput of a
  // zipline::Node (ordered drain, so output is byte-identical to the
  // workers=1 serial arrangement) across worker counts, dictionary-shard
  // counts and dictionary ownership. `private` gives every flow its own
  // dictionary; `shared` runs all workers against ONE
  // ConcurrentShardedDictionary (sequenced resolve phases, striped shard
  // locks), and `shared+steal` adds load-aware p2c placement plus work
  // stealing. workers=1 is the node's serial (threadless) arrangement —
  // the speedup baseline. Scaling tracks the machine's core count — on a
  // single-core host the curves are flat.
  std::printf("\n=== Fig. 4 companion: parallel node encode throughput"
              " ===\n");
  std::printf("(hardware_concurrency = %u; speedup is vs the serial"
              " workers=1 node in the same mode/shards)\n\n",
              std::thread::hardware_concurrency());
  const auto workload =
      make_stager_workload(/*flow_count=*/8,
                           /*units_per_flow=*/quick ? 16 : 48,
                           /*chunks_per_unit=*/256, /*chunk_bytes=*/32);
  const std::size_t worker_counts[] = {1, 2, 4, 8};
  const std::size_t shard_counts[] = {1, 8};
  struct Mode {
    const char* name;
    engine::DictionaryOwnership ownership;
    bool steal;
  };
  const Mode modes[] = {
      {"private", engine::DictionaryOwnership::per_flow, false},
      {"shared", engine::DictionaryOwnership::shared, false},
      {"shared+steal", engine::DictionaryOwnership::shared, true},
  };
  std::printf("%-14s %-8s %-8s %12s %10s\n", "mode", "workers", "shards",
              "MB/s", "speedup");
  io::Burst stager_out;
  for (const Mode& mode : modes) {
    for (const std::size_t shards : shard_counts) {
      double base_mbps = 0;
      for (const std::size_t workers : worker_counts) {
        io::NodeOptions options;
        options.workers = workers;
        options.dictionary_shards = shards;
        options.ownership = mode.ownership;
        if (mode.ownership == engine::DictionaryOwnership::shared) {
          options.steering = engine::FlowSteering::load_aware;
          options.work_stealing = mode.steal && workers > 1;
        }
        io::Node node(options);
        (void)time_stager_pass(node, workload, stager_out);  // warmup
        std::vector<double> mbps;
        for (int rep = 0; rep < (quick ? 3 : 5); ++rep) {
          const double secs = time_stager_pass(node, workload, stager_out);
          mbps.push_back(static_cast<double>(workload.total_bytes) / secs /
                         1e6);
        }
        const auto summary = sim::summarize(mbps);
        if (workers == 1) base_mbps = summary.mean;
        std::printf("%-14s %-8zu %-8zu %12.1f %9.2fx\n", mode.name, workers,
                    shards, summary.mean, summary.mean / base_mbps);
        char row[512];
        std::snprintf(row, sizeof row,
                      "{\"section\": \"stager\", \"mode\": \"%s\", "
                      "\"workers\": %zu, \"shards\": %zu, \"mbps\": %.2f, "
                      "\"mbps_ci95\": %.2f, \"speedup\": %.3f}",
                      mode.name, workers, shards, summary.mean,
                      summary.ci95_half_width, summary.mean / base_mbps);
        json.add(row);
      }
    }
  }

  // Simulated receiver rate with parallel-staged decode traffic: the
  // switch pipeline is per-packet, so the rate must stay flat while the
  // staging work above parallelizes.
  std::printf("\n=== Fig. 4 companion: parallel-staged GD decode traffic"
              " (64-chunk batches) ===\n");
  std::printf("%-14s %16s %18s\n", "stage_workers", "Gbit/s (±CI)",
              "Mpkt/s (±CI)");
  for (const std::size_t stage_workers : {std::size_t{1}, std::size_t{4}}) {
    std::vector<double> gbps;
    std::vector<double> mpps;
    for (std::uint64_t rep = 0; rep < repetitions; ++rep) {
      const auto result = sim::run_batch_throughput(
          prog::SwitchOp::decode, 64, duration, warmup, rep * 977 + 13,
          stage_workers);
      gbps.push_back(result.gbps);
      mpps.push_back(result.mpps);
    }
    const auto g = sim::summarize(gbps);
    const auto m = sim::summarize(mpps);
    std::printf("%-14zu %8.2f ±%5.2f %10.3f ±%6.3f\n", stage_workers, g.mean,
                g.ci95_half_width, m.mean, m.ci95_half_width);
    json.add(json_rate_row("staged_decode", "decode", stage_workers,
                           "stage_workers", g, m));
  }

  json.write("BENCH_fig4_throughput.json");
  std::printf("\nwrote BENCH_fig4_throughput.json\n");
  return 0;
}
