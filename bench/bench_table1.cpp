// Table 1 reproduction: generator polynomials for Hamming codes and the
// corresponding parameter for the Tofino CRC-m module (the polynomial
// minus its leading x^m term).
//
// Every row is validated: the polynomial must be primitive of degree m
// (the condition for a perfect Hamming code), and the CRC parameter is
// recomputed from the polynomial. Rows where our computed parameter
// differs from the value printed in the paper are flagged — the two
// (511, 502) rows of the published table appear to contain typos (see
// EXPERIMENTS.md).

#include <cstdio>
#include <vector>

#include "crc/polynomial.hpp"
#include "hamming/hamming.hpp"

int main() {
  using zipline::crc::Gf2Poly;

  struct PaperRow {
    int m;
    std::uint64_t poly_bits;   // generator incl. leading term
    std::uint64_t paper_param; // "Parameter for CRC-m" as printed
  };
  // Both alternatives listed by the paper for m = 5 and m = 9 included.
  const std::vector<PaperRow> rows = {
      {3, 0xB, 0x3},        {4, 0x13, 0x3},      {5, 0x25, 0x05},
      {5, 0x37, 0x17},      {6, 0x43, 0x03},     {7, 0x89, 0x09},
      {8, 0x11D, 0x1D},     {9, 0x211, 0x00D},   {9, 0x3E3, 0x0F3},
      {10, 0x409, 0x009},   {11, 0x805, 0x005},  {12, 0x1053, 0x053},
      {13, 0x201B, 0x01B},  {14, 0x4143, 0x143}, {15, 0x8003, 0x003},
  };

  std::printf("=== Table 1: Hamming generator polynomials and CRC-m"
              " parameters ===\n");
  std::printf("%-12s %-42s %-10s %-10s %-9s %s\n", "code (n,k)",
              "generator polynomial", "computed", "paper", "primitive",
              "note");
  for (const auto& row : rows) {
    const Gf2Poly g(row.poly_bits);
    const std::size_t n = (std::size_t{1} << row.m) - 1;
    const std::size_t k = n - static_cast<std::size_t>(row.m);
    const std::uint64_t computed = g.crc_param();
    const bool primitive = g.is_primitive();
    const bool matches = computed == row.paper_param;
    char code[48];
    std::snprintf(code, sizeof code, "(%zu, %zu)", n, k);
    std::printf("%-12s %-42s 0x%-8llX 0x%-8llX %-9s %s\n", code,
                g.to_string().c_str(),
                static_cast<unsigned long long>(computed),
                static_cast<unsigned long long>(row.paper_param),
                primitive ? "yes" : "NO",
                matches ? "" : "<- differs from published value");
    // A primitive generator also means a working code end to end; prove it
    // for the orders the library supports.
    if (primitive) {
      const zipline::hamming::HammingCode check(row.m, g);
      (void)check;
    }
  }
  std::printf("\nAll polynomials verified primitive; mismatching rows are"
              " typos in the published table\n");
  std::printf("(x^9+x^4+1 = 0x011, x^9+x^8+x^7+x^6+x^5+x+1 = 0x1E3).\n");
  return 0;
}
