// Socket-session scaling sweep for the netio transport (ROADMAP item:
// serve actual sockets, not just rings and pcap files).
//
// Topology: a client transport opens S concurrent loopback sessions to
// an echo server transport; every ZLF1 frame the server reassembles is
// framed straight back onto its session. One pumping thread drives both
// ends, so the numbers isolate the transport machinery itself — framing,
// the ready queue, outbound flushing, readiness dispatch across S fds —
// from codec cost (bench_fig4_* owns that). Sweeping S × payload size
// maps the two scaling axes: many idle-ish sessions (epoll's O(ready)
// claim) and per-frame byte cost. bytes_rebuffered rides along in every
// row: it counts partial-frame bytes carried across read boundaries, the
// price of TCP's indifference to our frame boundaries, and should scale
// with payload size, not session count.
//
// Every row is appended to BENCH_socket_sessions.json (one object per
// row) so the transport trajectory is tracked PR-over-PR alongside the
// other BENCH_* artifacts.
//
// Usage: bench_socket_sessions [--quick]

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <deque>
#include <string>
#include <utility>
#include <vector>

#include "bench_guard.hpp"
#include "common/rng.hpp"
#include "io/burst.hpp"
#include "netio/transport.hpp"
#include "sim/stats.hpp"

namespace {

using namespace zipline;

struct EchoRun {
  double seconds = 0;
  std::uint64_t frames = 0;
};

/// Sends `frames_per_session` frames of `payload_bytes` down every
/// session and pumps until each came back, echoing server-side.
EchoRun run_echo(netio::SocketTransport& server,
                 netio::SocketTransport& client,
                 const std::vector<std::uint32_t>& flows,
                 std::size_t frames_per_session, std::size_t payload_bytes,
                 Rng& rng) {
  std::vector<std::uint8_t> payload(payload_bytes);
  for (auto& b : payload) b = static_cast<std::uint8_t>(rng.next_u64());
  netio::LinkHeader header;
  header.type = gd::PacketType::raw;

  const std::uint64_t total =
      static_cast<std::uint64_t>(flows.size()) * frames_per_session;
  std::vector<std::size_t> sent(flows.size(), 0);
  std::uint64_t echoed = 0;
  // Echoes the bounded outbound queue refused, retried next round.
  std::deque<std::pair<std::uint32_t, std::vector<std::uint8_t>>> pending;
  io::Burst burst;

  const auto start = std::chrono::steady_clock::now();
  while (echoed < total) {
    for (std::size_t s = 0; s < flows.size(); ++s) {
      while (sent[s] < frames_per_session &&
             client.send_frame(flows[s], header, payload)) {
        ++sent[s];
      }
    }
    client.poll(0);
    server.poll(0);
    while (!pending.empty()) {
      const auto& [flow, bytes] = pending.front();
      if (!server.send_frame(flow, header, bytes)) break;
      pending.pop_front();
    }
    while (server.rx_burst(burst) > 0) {
      for (std::size_t i = 0; i < burst.size(); ++i) {
        const auto view = burst.payload(i);
        if (!server.send_frame(burst.meta(i).flow, header, view)) {
          pending.emplace_back(
              burst.meta(i).flow,
              std::vector<std::uint8_t>(view.begin(), view.end()));
        }
      }
    }
    server.poll(0);
    client.poll(0);
    while (client.rx_burst(burst) > 0) echoed += burst.size();
  }
  EchoRun run;
  run.seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();
  run.frames = total;
  return run;
}

}  // namespace

int main(int argc, char** argv) {
  const bool quick = argc > 1 && std::strcmp(argv[1], "--quick") == 0;
  const int repetitions = quick ? 3 : 5;
  const std::uint64_t frame_budget = quick ? 1024 : 4096;
  const std::vector<std::size_t> session_counts =
      quick ? std::vector<std::size_t>{1, 32, 128}
            : std::vector<std::size_t>{1, 32, 256, 1024};
  const std::vector<std::size_t> payload_sizes =
      quick ? std::vector<std::size_t>{64, 1024}
            : std::vector<std::size_t>{64, 1024, 8192};

  bench::require_release_build("bench_socket_sessions");
  std::vector<std::string> rows;
  {
    char meta[256];
    std::snprintf(meta, sizeof meta,
                  "{\"section\": \"meta\", \"zipline_build_type\": "
                  "\"%s\", \"zipline_simd_kernel\": \"%s\"}",
                  bench::build_type(), bench::simd_kernel_name());
    rows.push_back(meta);
  }

  std::printf("=== socket sessions: loopback echo, one pumping thread ===\n");
  std::printf("(round-trip frames/s through listen/accept, ZLF1 framing,\n"
              "ready queue, bounded outbound flush — codec excluded)\n\n");
  std::printf("%-10s %-10s %12s %12s %14s\n", "sessions", "payload",
              "kframes/s", "±CI95", "rebuffered B");
  Rng rng(0xECC0);
  for (const std::size_t sessions : session_counts) {
    for (const std::size_t payload_bytes : payload_sizes) {
      netio::SocketTransport server;
      netio::SocketTransport client;
      const std::uint16_t port = server.listen(0);
      std::vector<std::uint32_t> flows;
      for (std::size_t s = 0; s < sessions; ++s) {
        const std::uint32_t flow = client.connect(port);
        if (flow == 0) {
          std::fprintf(stderr, "connect %zu/%zu failed\n", s, sessions);
          return 1;
        }
        flows.push_back(flow);
        if (s % 64 == 63) server.poll(0);  // drain the accept queue
      }
      const std::size_t frames_per_session =
          std::max<std::uint64_t>(2, frame_budget / sessions);

      // Warmup rep (arenas, accepts, TCP window growth), then timed reps.
      (void)run_echo(server, client, flows, frames_per_session,
                     payload_bytes, rng);
      std::vector<double> kfps;
      for (int rep = 0; rep < repetitions; ++rep) {
        const EchoRun run = run_echo(server, client, flows,
                                     frames_per_session, payload_bytes, rng);
        kfps.push_back(static_cast<double>(run.frames) / run.seconds / 1e3);
      }
      const auto summary = sim::summarize(kfps);
      const netio::TransportStats server_stats = server.stats();
      const netio::TransportStats client_stats = client.stats();
      const std::uint64_t rebuffered =
          server_stats.bytes_rebuffered + client_stats.bytes_rebuffered;
      std::printf("%-10zu %-10zu %12.1f %12.1f %14llu\n", sessions,
                  payload_bytes, summary.mean, summary.ci95_half_width,
                  static_cast<unsigned long long>(rebuffered));
      char row[384];
      std::snprintf(
          row, sizeof row,
          "{\"section\": \"socket_sessions\", \"sessions\": %zu, "
          "\"payload_bytes\": %zu, \"frames_per_session\": %zu, "
          "\"kframes_per_sec\": %.2f, \"kframes_per_sec_ci95\": %.2f, "
          "\"bytes_rebuffered\": %llu, \"partial_writes\": %llu, "
          "\"frames_dropped\": %llu}",
          sessions, payload_bytes, frames_per_session, summary.mean,
          summary.ci95_half_width,
          static_cast<unsigned long long>(rebuffered),
          static_cast<unsigned long long>(server_stats.partial_writes +
                                          client_stats.partial_writes),
          static_cast<unsigned long long>(server_stats.frames_dropped +
                                          client_stats.frames_dropped));
      rows.push_back(row);
    }
  }

  std::FILE* f = std::fopen("BENCH_socket_sessions.json", "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot write BENCH_socket_sessions.json\n");
    return 1;
  }
  std::fprintf(f, "[\n");
  for (std::size_t i = 0; i < rows.size(); ++i) {
    std::fprintf(f, "  %s%s\n", rows[i].c_str(),
                 i + 1 < rows.size() ? "," : "");
  }
  std::fprintf(f, "]\n");
  std::fclose(f);
  std::printf("\nwrote BENCH_socket_sessions.json\n");
  return 0;
}
