// Ablation: eviction policy for identifier recycling (paper §5 chooses
// LRU, implemented through TNA's per-entry TTLs).
//
// A skewed workload (a hot set of stable sensors plus a long tail of
// one-shot bases) run against a deliberately undersized dictionary
// separates the policies: LRU protects the hot set, FIFO evicts it on
// schedule, random splits the difference.

#include <cstdio>

#include "common/rng.hpp"
#include "gd/codec.hpp"
#include "gd/transform.hpp"

int main() {
  using namespace zipline;
  std::printf("=== Ablation: dictionary eviction policy (paper uses LRU)"
              " ===\n\n");

  gd::GdParams params;
  params.id_bits = 6;  // 64 identifiers, deliberately tight
  params.validate();
  const gd::GdTransform transform(params);

  // Workload: 48 hot bases (fit comfortably) + a tail of cold one-shot
  // bases that pressure the dictionary.
  Rng rng(1234);
  auto canonical_chunk = [&] {
    bits::BitVector chunk(params.chunk_bits);
    for (std::size_t b = 0; b < params.chunk_bits; ++b) {
      if (rng.next_bool(0.5)) chunk.set(b);
    }
    const auto tc = transform.forward(chunk);
    return transform.inverse(tc.excess, tc.basis, 0);
  };
  std::vector<bits::BitVector> hot;
  for (int i = 0; i < 48; ++i) hot.push_back(canonical_chunk());

  std::vector<bits::BitVector> workload;
  for (int i = 0; i < 200000; ++i) {
    if (rng.next_bool(0.9)) {
      bits::BitVector chunk = hot[rng.next_below(hot.size())];
      chunk.flip(rng.next_below(255));  // sensor noise, same basis
      workload.push_back(std::move(chunk));
    } else {
      workload.push_back(canonical_chunk());  // cold one-shot basis
    }
  }

  std::printf("%-8s %-10s %-12s %-12s %-10s\n", "policy", "ratio",
              "type3 pkts", "type2 pkts", "evictions");
  const gd::EvictionPolicy policies[] = {gd::EvictionPolicy::lru,
                                         gd::EvictionPolicy::fifo,
                                         gd::EvictionPolicy::random};
  const char* names[] = {"lru", "fifo", "random"};
  for (int i = 0; i < 3; ++i) {
    gd::GdEncoder encoder{params, policies[i]};
    for (const auto& chunk : workload) {
      (void)encoder.encode_chunk(chunk);
    }
    const auto& stats = encoder.stats();
    std::printf("%-8s %-10.3f %-12llu %-12llu %-10llu %s\n", names[i],
                stats.compression_ratio(),
                static_cast<unsigned long long>(stats.compressed_packets),
                static_cast<unsigned long long>(stats.uncompressed_packets),
                static_cast<unsigned long long>(
                    encoder.dictionary().stats().evictions),
                i == 0 ? "<- paper's choice" : "");
  }
  std::printf("\nLRU keeps the hot bases resident under tail pressure;"
              " FIFO recycles them\nregardless of use; random falls in"
              " between.\n");
  return 0;
}
