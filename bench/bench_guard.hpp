// Shared guard for every bench main that emits BENCH_*.json.
//
// Two jobs: (1) refuse to benchmark a non-Release (assert-enabled) build —
// a checked-in debug-built JSON once masqueraded as the perf baseline —
// and (2) tag the emitted JSON with the build type and the resolved
// zipline::simd kernel level, so PR-over-PR deltas always say which code
// path actually ran on the host that produced them.
#pragma once

#include <cstdio>
#include <cstdlib>

#include "common/simd.hpp"

namespace zipline::bench {

/// Build tag of this binary (bench TUs share the library's flags).
inline const char* build_type() {
#ifdef NDEBUG
  return "release";
#else
  return "debug";
#endif
}

/// Name of the kernel level the data-path hot loops dispatch to.
inline const char* simd_kernel_name() {
  return simd::level_name(simd::level()).data();
}

/// Name of the level that was REQUESTED (env override or CPU probe)
/// before clamping — differs from simd_kernel_name() exactly when the
/// request was clamped down (e.g. avx512 forced on a non-AVX-512 build).
inline const char* simd_requested_name() {
  return simd::level_name(simd::requested()).data();
}

/// Exits (code 2) when this is a debug build, unless
/// ZIPLINE_BENCH_ALLOW_DEBUG is set — in which case it warns loudly and
/// the caller's JSON carries "zipline_build_type": "debug", which the CI
/// bench-coverage guard rejects.
inline void require_release_build(const char* bench_name) {
#ifdef NDEBUG
  (void)bench_name;
#else
  if (std::getenv("ZIPLINE_BENCH_ALLOW_DEBUG") == nullptr) {
    std::fprintf(
        stderr,
        "%s: refusing to run from a debug (assert-enabled) build — the "
        "numbers would be garbage and could be mistaken for a baseline.\n"
        "Rebuild with -DCMAKE_BUILD_TYPE=Release, or set "
        "ZIPLINE_BENCH_ALLOW_DEBUG=1 to force (output is tagged debug).\n",
        bench_name);
    std::exit(2);
  }
  std::fprintf(stderr,
               "%s: WARNING — benchmarking a DEBUG build "
               "(ZIPLINE_BENCH_ALLOW_DEBUG set); JSON is tagged debug.\n",
               bench_name);
#endif
}

}  // namespace zipline::bench
