// Figure 5 reproduction: observed end-to-end latency with the
// programmable switch performing no op, GD encode, or GD decode.
//
// One server sends packets to itself through the switch (hairpin port
// wiring) and measures the application-to-application round-trip time, as
// raw_ethernet_lat does. The paper's finding: adding ZipLine has no
// noticeable effect; RTTs sit in the low-teens of microseconds dominated
// by NIC and userspace overheads, not by the pipeline.
//
// Usage: bench_fig5_latency [--quick]

#include <cstdio>
#include <cstring>
#include <vector>

#include "sim/stats.hpp"
#include "sim/testbed.hpp"

int main(int argc, char** argv) {
  using namespace zipline;
  const bool quick = argc > 1 && std::strcmp(argv[1], "--quick") == 0;
  const std::uint64_t repetitions = quick ? 3 : 10;
  const std::uint64_t probes_per_rep = quick ? 50 : 200;

  const prog::SwitchOp ops[] = {prog::SwitchOp::forward,
                                prog::SwitchOp::encode,
                                prog::SwitchOp::decode};
  const char* op_names[] = {"no op", "encode", "decode"};

  std::printf("=== Figure 5: end-to-end RTT by switch operation ===\n");
  std::printf("paper shape: all three operations equal, low-teens of us\n\n");
  std::printf("%-8s %18s %12s %12s\n", "op", "RTT us (±CI)", "min", "max");
  for (std::size_t op_idx = 0; op_idx < 3; ++op_idx) {
    std::vector<double> all_samples;
    for (std::uint64_t rep = 0; rep < repetitions; ++rep) {
      const auto result =
          sim::run_latency(ops[op_idx], probes_per_rep,
                          rep * 211 + op_idx * 31 + 3);
      all_samples.insert(all_samples.end(), result.samples_us.begin(),
                         result.samples_us.end());
    }
    const auto stats = sim::summarize(all_samples);
    double min_v = all_samples.empty() ? 0 : all_samples.front();
    double max_v = min_v;
    for (const double v : all_samples) {
      min_v = std::min(min_v, v);
      max_v = std::max(max_v, v);
    }
    std::printf("%-8s %10.2f ±%5.2f %12.2f %12.2f\n", op_names[op_idx],
                stats.mean, stats.ci95_half_width, min_v, max_v);
  }
  return 0;
}
