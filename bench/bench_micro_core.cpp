// Microbenchmarks of the data-path primitives (google-benchmark).
//
// Context for the paper's motivation: these are the costs an end host
// pays in software, which ZipLine offloads to the switch. The syndrome
// CRC, the GD transform and the dictionary are the per-packet work items;
// DEFLATE is the baseline's per-byte cost.

#include <benchmark/benchmark.h>

#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "baseline/deflate.hpp"
#include "bench_guard.hpp"
#include "common/bitio.hpp"
#include "common/rng.hpp"
#include "common/simd.hpp"
#include "crc/syndrome_crc.hpp"
#include "engine/engine.hpp"
#include "engine/parallel.hpp"
#include "gd/concurrent_dictionary.hpp"
#include "gd/codec.hpp"
#include "gd/transform.hpp"
#include "io/buffer_pool.hpp"
#include "io/memory_ring.hpp"
#include "io/node.hpp"
#include "trace/synthetic.hpp"
#include "zipline/program.hpp"

namespace {

using namespace zipline;

bits::BitVector random_bits(Rng& rng, std::size_t n) {
  bits::BitVector v(n);
  for (std::size_t i = 0; i < n; ++i) {
    if (rng.next_bool(0.5)) v.set(i);
  }
  return v;
}

void BM_SyndromeCrc255(benchmark::State& state) {
  const crc::SyndromeCrc crc(crc::Gf2Poly(0x11D), 255);
  Rng rng(1);
  const auto word = random_bits(rng, 255);
  for (auto _ : state) {
    benchmark::DoNotOptimize(crc.compute(word));
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) * 32);
}
BENCHMARK(BM_SyndromeCrc255);

void BM_SyndromeCrcSlow255(benchmark::State& state) {
  const crc::Gf2Poly g(0x11D);
  Rng rng(1);
  const auto word = random_bits(rng, 255);
  for (auto _ : state) {
    benchmark::DoNotOptimize(crc::SyndromeCrc::compute_slow(g, word));
  }
}
BENCHMARK(BM_SyndromeCrcSlow255);

// --- bit packing ----------------------------------------------------------
// The engine's serialization inner loop, isolated: per chunk the exact
// type-2 field script emit_chunk runs — m-bit syndrome, 1-bit excess,
// 247-bit basis, byte alignment — over 64 chunks per iteration. This is
// the word-level accumulator path; BM_BitWriterPackByteLoop below is the
// frozen pre-PR byte-at-a-time reference, so the speedup is visible
// inside one JSON instead of only across PR artifacts.

constexpr std::size_t kPackChunks = 64;

struct PackWorkload {
  std::vector<std::uint32_t> syndromes;
  std::vector<bits::BitVector> excesses;
  std::vector<bits::BitVector> bases;
};

PackWorkload make_pack_workload() {
  Rng rng(11);
  PackWorkload w;
  for (std::size_t i = 0; i < kPackChunks; ++i) {
    w.syndromes.push_back(static_cast<std::uint32_t>(rng.next_u64() & 0xFF));
    w.excesses.push_back(random_bits(rng, 1));
    w.bases.push_back(random_bits(rng, 247));
  }
  return w;
}

void BM_BitWriterPack(benchmark::State& state) {
  const PackWorkload w = make_pack_workload();
  bits::BitWriter writer;
  for (auto _ : state) {
    writer.reset();
    for (std::size_t i = 0; i < kPackChunks; ++i) {
      writer.write_uint(w.syndromes[i], 8);
      writer.write_bits(w.excesses[i]);
      writer.write_bits(w.bases[i]);
      writer.align_to_byte();
    }
    benchmark::DoNotOptimize(writer.bytes().data());
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(kPackChunks * 32));
}
BENCHMARK(BM_BitWriterPack);

// Frozen copy of the pre-PR BitWriter (byte-at-a-time write_uint, per-bit
// push_bit) — the baseline the ≥1.5x acceptance gate measures against.
class ByteLoopBitWriter {
 public:
  void push_bit(bool b) {
    const std::size_t bit_in_byte = bit_count_ % 8;
    if (bit_in_byte == 0) bytes_.push_back(0);
    if (b) bytes_.back() |= static_cast<std::uint8_t>(1u << (7 - bit_in_byte));
    ++bit_count_;
  }
  void write_uint(std::uint64_t value, std::size_t width) {
    std::size_t remaining = width;
    while (remaining > 0) {
      const std::size_t bit_in_byte = bit_count_ % 8;
      if (bit_in_byte == 0) bytes_.push_back(0);
      const std::size_t take =
          std::min<std::size_t>(8 - bit_in_byte, remaining);
      const std::uint64_t chunk =
          (value >> (remaining - take)) & ((std::uint64_t{1} << take) - 1);
      bytes_.back() |=
          static_cast<std::uint8_t>(chunk << (8 - bit_in_byte - take));
      bit_count_ += take;
      remaining -= take;
    }
  }
  void write_bits(const bits::BitVector& v) {
    const auto words = v.words();
    std::size_t i = v.size();
    while (i > 0) {
      const std::size_t take = (i % 64 != 0) ? i % 64 : 64;
      const std::uint64_t word = words[(i - take) / 64];
      write_uint(take == 64 ? word : word & ((std::uint64_t{1} << take) - 1),
                 take);
      i -= take;
    }
  }
  void align_to_byte() {
    while (bit_count_ % 8 != 0) push_bit(false);
  }
  void reset() {
    bytes_.clear();
    bit_count_ = 0;
  }
  [[nodiscard]] const std::uint8_t* data() const { return bytes_.data(); }

 private:
  std::vector<std::uint8_t> bytes_;
  std::size_t bit_count_ = 0;
};

void BM_BitWriterPackByteLoop(benchmark::State& state) {
  const PackWorkload w = make_pack_workload();
  ByteLoopBitWriter writer;
  for (auto _ : state) {
    writer.reset();
    for (std::size_t i = 0; i < kPackChunks; ++i) {
      writer.write_uint(w.syndromes[i], 8);
      writer.write_bits(w.excesses[i]);
      writer.write_bits(w.bases[i]);
      writer.align_to_byte();
    }
    benchmark::DoNotOptimize(writer.data());
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(kPackChunks * 32));
}
BENCHMARK(BM_BitWriterPackByteLoop);

// The decoder's mirror: parse the 64-chunk type-2 stream back out through
// read_uint + read_bits_into (word-level unpack fast path).
void BM_BitReaderUnpack(benchmark::State& state) {
  const PackWorkload w = make_pack_workload();
  bits::BitWriter writer;
  for (std::size_t i = 0; i < kPackChunks; ++i) {
    writer.write_uint(w.syndromes[i], 8);
    writer.write_bits(w.excesses[i]);
    writer.write_bits(w.bases[i]);
    writer.align_to_byte();
  }
  const auto bytes = writer.to_bytes();
  bits::BitVector excess;
  bits::BitVector basis;
  for (auto _ : state) {
    bits::BitReader reader(bytes);
    for (std::size_t i = 0; i < kPackChunks; ++i) {
      benchmark::DoNotOptimize(reader.read_uint(8));
      reader.read_bits_into(1, excess);
      reader.read_bits_into(247, basis);
    }
    benchmark::DoNotOptimize(basis.words().data());
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(kPackChunks * 32));
}
BENCHMARK(BM_BitReaderUnpack);

// Byte-aligned bulk stream: header + align + 1024-bit words, the shape of
// container/snapshot framing rather than the packed type-2 body. Here the
// dispatch kernel's bulk byteswap-copy actually fires (the engine script
// above is deliberately bit-unaligned, where the win is the word
// accumulator alone), so this is the bench that separates kernel levels.
void BM_BitWriterPackAligned(benchmark::State& state) {
  Rng rng(13);
  std::vector<bits::BitVector> blocks;
  for (int i = 0; i < 16; ++i) blocks.push_back(random_bits(rng, 1024));
  bits::BitWriter writer;
  for (auto _ : state) {
    writer.reset();
    for (const auto& block : blocks) {
      writer.write_uint(0x5A, 8);
      writer.write_bits(block);
    }
    benchmark::DoNotOptimize(writer.bytes().data());
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) * 16 *
                          128);
}
BENCHMARK(BM_BitWriterPackAligned);

void BM_BitReaderUnpackAligned(benchmark::State& state) {
  Rng rng(13);
  bits::BitWriter writer;
  for (int i = 0; i < 16; ++i) {
    writer.write_uint(0x5A, 8);
    writer.write_bits(random_bits(rng, 1024));
  }
  const auto bytes = writer.to_bytes();
  bits::BitVector block;
  for (auto _ : state) {
    bits::BitReader reader(bytes);
    for (int i = 0; i < 16; ++i) {
      benchmark::DoNotOptimize(reader.read_uint(8));
      reader.read_bits_into(1024, block);
    }
    benchmark::DoNotOptimize(block.words().data());
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) * 16 *
                          128);
}
BENCHMARK(BM_BitReaderUnpackAligned);

// Padding/alignment regression guards: both must be O(bytes) resize
// arithmetic (and skip pure pointer arithmetic), never per-bit loops — a
// quiet revert shows up as a ~3 orders of magnitude items/s drop here.
void BM_BitWriterPadding(benchmark::State& state) {
  bits::BitWriter writer;
  for (auto _ : state) {
    writer.reset();
    writer.write_uint(1, 3);
    writer.write_padding(4093);
    writer.align_to_byte();
    benchmark::DoNotOptimize(writer.bytes().data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          4096);
}
BENCHMARK(BM_BitWriterPadding);

void BM_BitReaderSkip(benchmark::State& state) {
  const std::vector<std::uint8_t> bytes(512, 0);
  for (auto _ : state) {
    bits::BitReader reader(bytes);
    reader.skip(3);
    reader.skip(4093);
    benchmark::DoNotOptimize(reader.bits_consumed());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          4096);
}
BENCHMARK(BM_BitReaderSkip);

void BM_GdForwardTransform(benchmark::State& state) {
  const gd::GdTransform transform{gd::GdParams{}};
  Rng rng(2);
  const auto chunk = random_bits(rng, 256);
  for (auto _ : state) {
    benchmark::DoNotOptimize(transform.forward(chunk));
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) * 32);
}
BENCHMARK(BM_GdForwardTransform);

void BM_GdInverseTransform(benchmark::State& state) {
  const gd::GdTransform transform{gd::GdParams{}};
  Rng rng(3);
  const auto tc = transform.forward(random_bits(rng, 256));
  for (auto _ : state) {
    benchmark::DoNotOptimize(transform.inverse(tc));
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) * 32);
}
BENCHMARK(BM_GdInverseTransform);

// --- transform fast path ---------------------------------------------------
// Block-of-chunks vs chunk-at-a-time over one unit of range(0) chunks.
// The *ChunkAtATime rows are the FROZEN baseline: the exact per-chunk
// forward_into/inverse_into loop the engine ran before the block kernels
// landed — keep them so the block rows' speedup stays measurable
// PR-over-PR. Both paths are byte-identical at every kernel level
// (tests/transform_block_test.cpp).

void BM_TransformForwardChunkAtATime(benchmark::State& state) {
  const gd::GdTransform transform{gd::GdParams{}};
  const auto count = static_cast<std::size_t>(state.range(0));
  Rng rng(11);
  std::vector<std::uint8_t> payload(count * 32);
  for (auto& b : payload) b = static_cast<std::uint8_t>(rng.next_u64());
  std::vector<gd::TransformedChunk> out(count);
  bits::BitVector chunk;
  bits::BitVector word;
  for (auto _ : state) {
    for (std::size_t c = 0; c < count; ++c) {
      chunk.assign_from_bytes({payload.data() + c * 32, 32}, 256);
      transform.forward_into(chunk, out[c], word);
    }
    benchmark::DoNotOptimize(out.data());
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(payload.size()));
}
BENCHMARK(BM_TransformForwardChunkAtATime)->Arg(8)->Arg(64);

void BM_TransformForwardBlock(benchmark::State& state) {
  const gd::GdTransform transform{gd::GdParams{}};
  const auto count = static_cast<std::size_t>(state.range(0));
  Rng rng(11);
  std::vector<std::uint8_t> payload(count * 32);
  for (auto& b : payload) b = static_cast<std::uint8_t>(rng.next_u64());
  std::vector<gd::TransformedChunk> out(count);
  gd::TransformBlockScratch scratch;
  for (auto _ : state) {
    transform.forward_block(payload, count, out, scratch);
    benchmark::DoNotOptimize(out.data());
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(payload.size()));
}
BENCHMARK(BM_TransformForwardBlock)->Arg(8)->Arg(64);

void BM_TransformInverseChunkAtATime(benchmark::State& state) {
  const gd::GdTransform transform{gd::GdParams{}};
  const auto count = static_cast<std::size_t>(state.range(0));
  Rng rng(12);
  std::vector<gd::TransformedChunk> triples(count);
  for (auto& t : triples) t = transform.forward(random_bits(rng, 256));
  bits::BitVector out;
  bits::BitVector word;
  for (auto _ : state) {
    for (std::size_t c = 0; c < count; ++c) {
      transform.inverse_into(triples[c].excess, triples[c].basis,
                             triples[c].syndrome, out, word);
      benchmark::DoNotOptimize(out.size());
    }
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(count * 32));
}
BENCHMARK(BM_TransformInverseChunkAtATime)->Arg(8)->Arg(64);

void BM_TransformInverseBlock(benchmark::State& state) {
  const gd::GdTransform transform{gd::GdParams{}};
  const auto count = static_cast<std::size_t>(state.range(0));
  const std::size_t n = transform.params().n();
  Rng rng(12);
  std::vector<gd::TransformedChunk> triples(count);
  for (auto& t : triples) t = transform.forward(random_bits(rng, 256));
  gd::TransformBlockScratch scratch;
  bits::BitVector out;
  for (auto _ : state) {
    // The decode_emit sequence: reserve, stage every row, one expand
    // batch, then compose each chunk from its plane row + excess.
    transform.inverse_block_reserve(count, scratch);
    for (std::size_t c = 0; c < count; ++c) {
      transform.inverse_block_stage(scratch, c, triples[c].basis,
                                    triples[c].syndrome);
    }
    transform.inverse_block_expand(scratch, count);
    for (std::size_t c = 0; c < count; ++c) {
      out.assign_from_words(transform.chunk_row(scratch, c), 256);
      out.accumulate_shifted(triples[c].excess, n);
      benchmark::DoNotOptimize(out.size());
    }
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(count * 32));
}
BENCHMARK(BM_TransformInverseBlock)->Arg(8)->Arg(64);

// The raw kernel behind the block transform: one compute_block call folds
// range(0) 255-bit rows as interleaved streams. Compare bytes/s against
// BM_SyndromeCrc255 (the single-stream fold, one row per call) — the gap
// is what the multi-stream interleave buys on this host.
void BM_SyndromeCrcMultiStream(benchmark::State& state) {
  const crc::SyndromeCrc crc(crc::Gf2Poly(0x11D), 255);
  const auto count = static_cast<std::size_t>(state.range(0));
  const std::size_t stride = 4;  // 255 bits = 4 words, fold reads them all
  Rng rng(13);
  std::vector<std::uint64_t> plane(count * stride + 8);
  for (auto& w : plane) w = rng.next_u64();
  for (std::size_t c = 0; c < count; ++c) {
    plane[c * stride + 3] &= ~(std::uint64_t{1} << 63);  // trim to 255 bits
  }
  std::vector<std::uint32_t> out(count);
  for (auto _ : state) {
    crc.compute_block(plane.data(), stride, count, out.data());
    benchmark::DoNotOptimize(out.data());
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(count * 32));
}
BENCHMARK(BM_SyndromeCrcMultiStream)->Arg(8)->Arg(64);

void BM_EncoderHitPath(benchmark::State& state) {
  gd::GdEncoder encoder{gd::GdParams{}};
  Rng rng(4);
  const auto chunk = random_bits(rng, 256);
  (void)encoder.encode_chunk(chunk);  // learn once
  for (auto _ : state) {
    benchmark::DoNotOptimize(encoder.encode_chunk(chunk));
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) * 32);
}
BENCHMARK(BM_EncoderHitPath);

// Batch-size sweep over the engine's encode path: one encode_payload call
// per iteration over range(0) chunks, arena and dictionary reused across
// iterations. In steady state (all hits) the engine performs zero heap
// allocations per chunk — tests/engine_alloc_test.cpp asserts it, this
// measures what it buys at batch sizes 1/8/64/256 against the per-chunk
// adapter (BM_EncoderHitPath above).
void BM_EngineEncodeBatch(benchmark::State& state) {
  const auto batch_chunks = static_cast<std::size_t>(state.range(0));
  engine::Engine eng{gd::GdParams{}};
  Rng rng(7);
  std::vector<std::uint8_t> payload(batch_chunks *
                                    eng.params().raw_payload_bytes());
  for (auto& b : payload) b = static_cast<std::uint8_t>(rng.next_u64());
  engine::EncodeBatch batch;
  eng.encode_payload(payload, batch);  // warm the dictionary and the arena
  for (auto _ : state) {
    batch.clear();
    eng.encode_payload(payload, batch);
    benchmark::DoNotOptimize(batch.storage().data());
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(payload.size()));
}
BENCHMARK(BM_EngineEncodeBatch)->Arg(1)->Arg(8)->Arg(64)->Arg(256);

void BM_EngineDecodeBatch(benchmark::State& state) {
  const auto batch_chunks = static_cast<std::size_t>(state.range(0));
  const gd::GdParams params;
  engine::Engine enc{params};
  engine::Engine dec{params};
  Rng rng(8);
  std::vector<std::uint8_t> payload(batch_chunks * params.raw_payload_bytes());
  for (auto& b : payload) b = static_cast<std::uint8_t>(rng.next_u64());
  engine::EncodeBatch encoded;
  enc.encode_payload(payload, encoded);
  engine::DecodeBatch decoded;
  dec.decode_batch(encoded, decoded);  // warm the mirrored dictionary
  for (auto _ : state) {
    decoded.clear();
    dec.decode_batch(encoded, decoded);
    benchmark::DoNotOptimize(decoded.bytes().data());
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(payload.size()));
}
BENCHMARK(BM_EngineDecodeBatch)->Arg(1)->Arg(8)->Arg(64)->Arg(256);

void BM_DictionaryLookup(benchmark::State& state) {
  gd::BasisDictionary dict(32768, gd::EvictionPolicy::lru);
  Rng rng(5);
  std::vector<bits::BitVector> bases;
  for (int i = 0; i < 1024; ++i) {
    bases.push_back(random_bits(rng, 247));
    dict.insert(bases.back());
  }
  std::size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(dict.lookup(bases[i++ & 1023]));
  }
}
BENCHMARK(BM_DictionaryLookup);

// The encoder's dominant case on fresh traffic: a miss. The fingerprint
// prefilter resolves most of these from one 12-bit counted-table probe,
// skipping the full 247-bit hash (compare against BM_DictionaryLookup).
void BM_DictionaryLookupMiss(benchmark::State& state) {
  gd::BasisDictionary dict(32768, gd::EvictionPolicy::lru);
  Rng rng(5);
  for (int i = 0; i < 1024; ++i) {
    dict.insert(random_bits(rng, 247));
  }
  std::vector<bits::BitVector> absent;
  for (int i = 0; i < 1024; ++i) {
    absent.push_back(random_bits(rng, 247));
  }
  std::size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(dict.lookup(absent[i++ & 1023]));
  }
  state.counters["prefilter_skip_rate"] =
      static_cast<double>(dict.stats().prefilter_skips) /
      static_cast<double>(dict.stats().misses);
}
BENCHMARK(BM_DictionaryLookupMiss);

// Sharded dictionary hit path — the hash-once regression guard. One
// BitVector::hash() serves the shard router AND the in-shard map probe
// (threaded through lookup/insert/install), so this must track
// BM_DictionaryLookup closely at every shard count; a second full hash on
// this path would show up as a near-2x regression here. The fifo arg is
// the private baseline for BM_ConcurrentDictionaryLookup below (a fifo
// hit skips the LRU recency splice, matching what the concurrent
// service's lock-free read path serves).
void BM_ShardedDictionaryLookup(benchmark::State& state) {
  gd::ShardedDictionary dict(32768,
                             state.range(1) != 0 ? gd::EvictionPolicy::fifo
                                                 : gd::EvictionPolicy::lru,
                             static_cast<std::size_t>(state.range(0)));
  Rng rng(5);
  std::vector<bits::BitVector> bases;
  for (int i = 0; i < 1024; ++i) {
    bases.push_back(random_bits(rng, 247));
    dict.insert(bases.back());
  }
  std::size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(dict.lookup(bases[i++ & 1023]));
  }
}
BENCHMARK(BM_ShardedDictionaryLookup)
    ->ArgNames({"shards", "fifo"})
    ->Args({1, 0})
    ->Args({8, 0})
    ->Args({64, 0})
    ->Args({8, 1});

// Sharded miss path: the router must hash to pick the shard, but the
// shard's prefilter still short-circuits most misses before the map probe
// — and the hash it did compute is reused, never recomputed, by the probe
// that does happen.
void BM_ShardedDictionaryLookupMiss(benchmark::State& state) {
  gd::ShardedDictionary dict(32768, gd::EvictionPolicy::lru,
                             static_cast<std::size_t>(state.range(0)));
  Rng rng(5);
  for (int i = 0; i < 1024; ++i) {
    dict.insert(random_bits(rng, 247));
  }
  std::vector<bits::BitVector> absent;
  for (int i = 0; i < 1024; ++i) {
    absent.push_back(random_bits(rng, 247));
  }
  std::size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(dict.lookup(absent[i++ & 1023]));
  }
}
BENCHMARK(BM_ShardedDictionaryLookupMiss)->Arg(1)->Arg(8);

// The shared dictionary service's read-path tax. range(1) selects the
// path: 0 = locked (every lookup takes its shard's striped mutex — the
// ~40% uncontended overhead over BM_ShardedDictionaryLookup the ROADMAP
// called out), 1 = seqlock (lookups answered from the per-shard lock-free
// mirror; Threads(1) vs the private fifo baseline shows the residual
// overhead, higher thread counts show readers scaling past the stripe
// count instead of serializing on it). FIFO policy because an LRU *hit*
// must refresh recency — a write — and takes the stripe lock on either
// path; fifo/random hits (and misses under every policy) are pure reads,
// which is what the seqlock path serves without blocking.
void BM_ConcurrentDictionaryLookup(benchmark::State& state) {
  static gd::ConcurrentShardedDictionary* dict = nullptr;
  static std::vector<bits::BitVector>* bases = nullptr;
  if (state.thread_index() == 0) {
    const auto shards = static_cast<std::size_t>(state.range(0));
    const auto path = state.range(1) != 0 ? gd::ReadPath::seqlock
                                          : gd::ReadPath::locked;
    dict = new gd::ConcurrentShardedDictionary(32768, gd::EvictionPolicy::fifo,
                                               shards, path);
    bases = new std::vector<bits::BitVector>();
    Rng rng(5);
    for (int i = 0; i < 1024; ++i) {
      bases->push_back(random_bits(rng, 247));
      (void)dict->insert(bases->back());
    }
  }
  std::size_t i = static_cast<std::size_t>(state.thread_index()) * 37;
  for (auto _ : state) {
    benchmark::DoNotOptimize(dict->lookup((*bases)[i++ & 1023]));
  }
  if (state.thread_index() == 0) {
    delete dict;
    delete bases;
    dict = nullptr;
    bases = nullptr;
  }
}
BENCHMARK(BM_ConcurrentDictionaryLookup)
    ->ArgNames({"shards", "seqlock"})
    ->Args({8, 0})
    ->Args({8, 1})
    ->Threads(1)
    ->Threads(2)
    ->Threads(4);

// Multi-reader contention against a live writer: thread 0 continuously
// inserts fresh random bases (publishing new entries and, once the table
// fills, evictions), while the remaining {1, 2, 4, 8} reader threads look
// up a resident working set. On the locked path readers serialize on the
// 8 stripe mutexes (and collide with the writer); on the seqlock path
// reads never block, so aggregate reader throughput scales with the
// reader count. (On a single-core host the scaling flattens to the
// timeslice — the CI runners have real parallelism.)
void BM_ConcurrentDictionaryLookupContended(benchmark::State& state) {
  static gd::ConcurrentShardedDictionary* dict = nullptr;
  static std::vector<bits::BitVector>* bases = nullptr;
  if (state.thread_index() == 0) {
    const auto path = state.range(0) != 0 ? gd::ReadPath::seqlock
                                          : gd::ReadPath::locked;
    dict = new gd::ConcurrentShardedDictionary(32768, gd::EvictionPolicy::fifo,
                                               8, path);
    bases = new std::vector<bits::BitVector>();
    Rng rng(5);
    for (int i = 0; i < 1024; ++i) {
      bases->push_back(random_bits(rng, 247));
      (void)dict->insert(bases->back());
    }
  }
  if (state.thread_index() == 0) {
    // The background writer: alternate inserting a fresh basis and
    // erasing it again, so every iteration is a real seqlock publish but
    // the population stays bounded — the readers' 1024-base working set
    // is never evicted, keeping them on the HIT path for the whole trial
    // (unbounded fresh inserts would fill the 32768-entry table and FIFO-
    // evict the working set mid-run, silently turning this into a miss
    // benchmark). Insert throughput is not the measurement.
    Rng rng(0xBEEF);
    std::uint32_t last = 0;
    bool pending = false;
    for (auto _ : state) {
      if (pending) {
        dict->erase(last);
        pending = false;
      } else {
        last = dict->insert(random_bits(rng, 247)).id;
        pending = true;
      }
    }
  } else {
    std::size_t i = static_cast<std::size_t>(state.thread_index()) * 37;
    for (auto _ : state) {
      benchmark::DoNotOptimize(dict->lookup((*bases)[i++ & 1023]));
    }
    state.SetItemsProcessed(state.iterations());
  }
  if (state.thread_index() == 0) {
    delete dict;
    delete bases;
    dict = nullptr;
    bases = nullptr;
  }
}
BENCHMARK(BM_ConcurrentDictionaryLookupContended)
    ->ArgName("seqlock")
    ->Arg(0)
    ->Arg(1)
    ->Threads(2)
    ->Threads(3)
    ->Threads(5)
    ->Threads(9);

// The recency-policy tax on a HIT-heavy contended workload, which the
// fifo runs above deliberately dodge: an LRU hit is a WRITE (the recency
// splice), so even on the seqlock read path every reader hit takes its
// stripe mutex and colliding readers serialize. range(0) = 1 swaps in
// EvictionPolicy::clock, whose hit records recency as one relaxed
// referenced-bit store on the lock-free path — same workload, no lock.
// Readers loop over a resident working set against a live writer
// (insert/erase alternation, as above); reader items/s is the metric.
void BM_ConcurrentDictionaryLookupContendedLru(benchmark::State& state) {
  static gd::ConcurrentShardedDictionary* dict = nullptr;
  static std::vector<bits::BitVector>* bases = nullptr;
  if (state.thread_index() == 0) {
    const auto policy = state.range(0) != 0 ? gd::EvictionPolicy::clock
                                            : gd::EvictionPolicy::lru;
    dict = new gd::ConcurrentShardedDictionary(32768, policy, 8,
                                               gd::ReadPath::seqlock);
    bases = new std::vector<bits::BitVector>();
    Rng rng(5);
    for (int i = 0; i < 1024; ++i) {
      bases->push_back(random_bits(rng, 247));
      (void)dict->insert(bases->back());
    }
  }
  if (state.thread_index() == 0) {
    Rng rng(0xBEEF);
    std::uint32_t last = 0;
    bool pending = false;
    for (auto _ : state) {
      if (pending) {
        dict->erase(last);
        pending = false;
      } else {
        last = dict->insert(random_bits(rng, 247)).id;
        pending = true;
      }
    }
  } else {
    std::size_t i = static_cast<std::size_t>(state.thread_index()) * 37;
    for (auto _ : state) {
      benchmark::DoNotOptimize(dict->lookup((*bases)[i++ & 1023]));
    }
    state.SetItemsProcessed(state.iterations());
  }
  if (state.thread_index() == 0) {
    const gd::DictionaryStats stats = dict->stats();
    state.counters["stripe_acquisitions"] =
        static_cast<double>(stats.stripe_acquisitions);
    state.counters["clock_touches"] = static_cast<double>(stats.clock_touches);
    delete dict;
    delete bases;
    dict = nullptr;
    bases = nullptr;
  }
}
BENCHMARK(BM_ConcurrentDictionaryLookupContendedLru)
    ->ArgName("clock")
    ->Arg(0)
    ->Arg(1)
    ->Threads(2)
    ->Threads(3)
    ->Threads(5)
    ->Threads(9);

// The per-shard resolve turnstiles, measured at the pipeline level. Every
// unit is 8 chunks pre-binned by the dictionary's own shard router:
// range(0) = 0 gives each unit a single-shard footprint rotated across
// the 8 shards (disjoint — concurrent units rarely share a shard, so
// admissions should not block), range(0) = 1 mixes all 8 shards into
// every unit (total overlap — per-shard turnstiles degenerate to the old
// global resolve turnstile). Units spread over 4 pinned workers on 4
// flows. turnstile_waits / stripe_acquisitions per flush window are
// reported as counters; the disjoint-vs-overlap wait gap is what the
// per-shard split buys over one global turnstile.
void BM_PipelineShardTurnstile(benchmark::State& state) {
  constexpr std::size_t kShards = 8;
  constexpr std::size_t kUnits = 64;
  constexpr std::size_t kChunksPerUnit = 8;
  const bool overlap = state.range(0) != 0;
  const gd::GdParams params;
  const gd::GdTransform transform{params};
  const gd::ShardedDictionary router(params.dictionary_capacity(),
                                     gd::EvictionPolicy::lru, kShards);
  const std::size_t chunk_bytes = params.raw_payload_bytes();

  // Bin random chunks by the shard their basis routes to.
  Rng rng(0x5A4D);
  std::vector<std::vector<std::vector<std::uint8_t>>> bins(kShards);
  bits::BitVector chunk_bits;
  std::size_t filled = 0;
  while (filled < kShards) {
    std::vector<std::uint8_t> chunk(chunk_bytes);
    for (auto& b : chunk) b = static_cast<std::uint8_t>(rng.next_u64());
    chunk_bits.assign_from_bytes(chunk, params.chunk_bits);
    auto& bin = bins[router.shard_of(transform.forward(chunk_bits).basis)];
    if (bin.size() < 24) {
      bin.push_back(std::move(chunk));
      if (bin.size() == 24) ++filled;
    }
  }

  std::vector<std::vector<std::uint8_t>> payloads(kUnits);
  for (std::size_t u = 0; u < kUnits; ++u) {
    for (std::size_t c = 0; c < kChunksPerUnit; ++c) {
      // Disjoint: every chunk of unit u from bin u%8. Overlap: chunk c
      // from bin (u+c)%8, touching all eight shards per unit.
      const auto& bin = bins[(overlap ? u + c : u) % kShards];
      const auto& chunk = bin[(u / kShards + c) % bin.size()];
      payloads[u].insert(payloads[u].end(), chunk.begin(), chunk.end());
    }
  }

  engine::ParallelOptions options;
  options.workers = 4;
  options.queue_depth = 8;
  options.dictionary_shards = kShards;
  options.ownership = engine::DictionaryOwnership::shared;
  options.steering = engine::FlowSteering::pinned;
  engine::ParallelEncoder encoder(params, options, nullptr);
  for (std::size_t u = 0; u < kUnits; ++u) {  // warm dictionary + arenas
    encoder.submit(static_cast<std::uint32_t>(u % options.workers),
                   payloads[u]);
  }
  encoder.flush();
  const gd::DictionaryStats warm = encoder.shared_dictionary()->stats();

  for (auto _ : state) {
    for (std::size_t u = 0; u < kUnits; ++u) {
      encoder.submit(static_cast<std::uint32_t>(u % options.workers),
                     payloads[u]);
    }
    encoder.flush();
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(kUnits));
  const gd::DictionaryStats stats = encoder.shared_dictionary()->stats();
  const auto per_iter = [&](std::uint64_t total, std::uint64_t warm_part) {
    return static_cast<double>(total - warm_part) /
           static_cast<double>(state.iterations());
  };
  state.counters["turnstile_waits"] =
      per_iter(stats.turnstile_waits, warm.turnstile_waits);
  state.counters["stripe_acquisitions"] =
      per_iter(stats.stripe_acquisitions, warm.stripe_acquisitions);
  state.counters["prefetched_probes"] =
      per_iter(stats.prefetched_probes, warm.prefetched_probes);
}
BENCHMARK(BM_PipelineShardTurnstile)
    ->ArgName("overlap")
    ->Arg(0)
    ->Arg(1)
    ->Unit(benchmark::kMicrosecond);

// Node burst encode: one process() pass (submit every unit + flush) over
// a fixed 8-flow burst through the zipline::Node facade. Wall-clock
// scaling with range(0) workers tracks the host's core count (flat on a
// single-core machine; workers=1 is the threadless serial arrangement);
// bench_fig4_throughput sweeps this against dictionary shard counts and
// ownership modes with throughput reporting.
void BM_NodeEncodeBurst(benchmark::State& state) {
  const gd::GdParams params;
  io::NodeOptions options;
  options.params = params;
  options.workers = static_cast<std::size_t>(state.range(0));
  Rng rng(9);
  io::Burst in;
  std::vector<std::uint8_t> payload(64 * params.raw_payload_bytes());
  for (std::uint32_t flow = 0; flow < 8; ++flow) {
    for (auto& b : payload) b = static_cast<std::uint8_t>(rng.next_u64());
    io::PacketMeta meta;
    meta.flow = flow;
    in.append(gd::PacketType::raw, 0, 0, payload, meta);
  }
  io::Node node(options);
  io::Burst out;
  node.process(in, out);  // warm every flow engine + arenas
  std::int64_t bytes = 0;
  for (auto _ : state) {
    out.clear();
    node.process(in, out);
    bytes += static_cast<std::int64_t>(8 * payload.size());
    benchmark::DoNotOptimize(out.payload(0).data());
  }
  state.SetBytesProcessed(bytes);
}
BENCHMARK(BM_NodeEncodeBurst)->Arg(1)->Arg(2)->Arg(4);

// Passthrough-ratio sweep: a segment-backed burst (the shape a pooled
// source serves) with `pct`% passthrough packets through a serial node
// and one ring hop (the sink push — where a copying data path pays
// again), with zero_copy on (view splices + segment-ref shares) vs off
// (the frozen pre-zero-copy baseline, every hop copies — the same
// measurable-baseline role ByteLoopBitWriter plays for bit I/O). Output
// bytes are identical across the flag (tests/io_backend_test.cpp); the
// counters price the memory traffic:
//   bytes_copied_per_packet — node + ring payload bytes physically
//     copied, per input packet (the acceptance number: zero_copy=1 must
//     be ≥30% below zero_copy=0 on the passthrough-heavy rows)
//   copies_per_packet — the node's own NodeStats::copies_per_packet
void BM_NodeEncodeBurstPassthrough(benchmark::State& state) {
  const gd::GdParams params;
  const auto passthrough_pct = static_cast<std::size_t>(state.range(0));
  const bool zero_copy = state.range(1) != 0;
  io::NodeOptions options;
  options.params = params;
  options.workers = 1;
  options.zero_copy = zero_copy;
  io::BufferPool pool(16384, 64);
  io::SegmentWriter writer(pool);
  Rng rng(11);
  io::Burst in;
  std::vector<std::uint8_t> payload(params.raw_payload_bytes());
  constexpr std::size_t kPackets = 64;
  std::size_t in_bytes = 0;
  for (std::size_t i = 0; i < kPackets; ++i) {
    for (auto& b : payload) b = static_cast<std::uint8_t>(rng.next_u64());
    io::PacketMeta meta;
    meta.flow = static_cast<std::uint32_t>(i % 8);
    // First pct% of the burst passes through untouched (position within
    // the burst does not change the cost being measured).
    meta.process = (i * 100) / kPackets >= passthrough_pct;
    in.append_segment(gd::PacketType::raw, 0, 0, writer.write(payload),
                      writer.segment(), meta);
    in_bytes += payload.size();
  }
  io::Node node(options);
  io::MemoryRing sink_ring(2);
  io::Burst out;
  io::Burst drained;
  const auto pump = [&] {
    out.clear();
    node.process(in, out);
    benchmark::DoNotOptimize(out.payload(0).data());
    if (!sink_ring.try_push(out)) state.SkipWithError("ring full");
    if (!sink_ring.try_pop(drained)) state.SkipWithError("ring empty");
  };
  pump();  // warm engines, arenas, ring slots
  const std::uint64_t warm_node = node.stats().bytes_copied;
  const std::uint64_t warm_ring = sink_ring.stats().bytes_copied;
  for (auto _ : state) {
    pump();
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(kPackets));
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(in_bytes));
  const auto per_packet = [&](std::uint64_t total, std::uint64_t warm) {
    return static_cast<double>(total - warm) /
           static_cast<double>(state.iterations()) /
           static_cast<double>(kPackets);
  };
  const double node_bpp = per_packet(node.stats().bytes_copied, warm_node);
  const double ring_bpp =
      per_packet(sink_ring.stats().bytes_copied, warm_ring);
  state.counters["bytes_copied_per_packet"] = node_bpp + ring_bpp;
  state.counters["node_bytes_copied_per_packet"] = node_bpp;
  state.counters["ring_bytes_copied_per_packet"] = ring_bpp;
  state.counters["copies_per_packet"] = node.stats().copies_per_packet;
}
BENCHMARK(BM_NodeEncodeBurstPassthrough)
    ->ArgNames({"passthrough_pct", "zero_copy"})
    ->ArgsProduct({{0, 50, 90}, {0, 1}});

// The same burst against the shared-dictionary node (one table, p2c
// steering + stealing past workers=1): what the one-table-per-direction
// switch reality costs relative to private per-flow dictionaries above.
void BM_NodeEncodeBurstShared(benchmark::State& state) {
  const gd::GdParams params;
  io::NodeOptions options;
  options.params = params;
  options.workers = static_cast<std::size_t>(state.range(0));
  options.ownership = engine::DictionaryOwnership::shared;
  if (options.workers > 1) {
    options.steering = engine::FlowSteering::load_aware;
    options.work_stealing = true;
  }
  Rng rng(9);
  io::Burst in;
  std::vector<std::uint8_t> payload(64 * params.raw_payload_bytes());
  for (std::uint32_t flow = 0; flow < 8; ++flow) {
    for (auto& b : payload) b = static_cast<std::uint8_t>(rng.next_u64());
    io::PacketMeta meta;
    meta.flow = flow;
    in.append(gd::PacketType::raw, 0, 0, payload, meta);
  }
  io::Node node(options);
  io::Burst out;
  node.process(in, out);
  std::int64_t bytes = 0;
  for (auto _ : state) {
    out.clear();
    node.process(in, out);
    bytes += static_cast<std::int64_t>(8 * payload.size());
    benchmark::DoNotOptimize(out.payload(0).data());
  }
  state.SetBytesProcessed(bytes);
}
BENCHMARK(BM_NodeEncodeBurstShared)->Arg(1)->Arg(2)->Arg(4);

void BM_DeflateSensorTrace(benchmark::State& state) {
  trace::SyntheticSensorConfig config;
  config.chunk_count = static_cast<std::uint64_t>(state.range(0));
  const auto flat = trace::concatenate(generate_synthetic_sensor(config));
  for (auto _ : state) {
    benchmark::DoNotOptimize(baseline::deflate_compress(flat));
  }
  state.SetBytesProcessed(
      static_cast<std::int64_t>(state.iterations() * flat.size()));
}
BENCHMARK(BM_DeflateSensorTrace)->Arg(2000)->Arg(20000)->Unit(benchmark::kMillisecond);

void BM_InflateSensorTrace(benchmark::State& state) {
  trace::SyntheticSensorConfig config;
  config.chunk_count = 20000;
  const auto flat = trace::concatenate(generate_synthetic_sensor(config));
  const auto compressed = baseline::deflate_compress(flat);
  for (auto _ : state) {
    benchmark::DoNotOptimize(baseline::deflate_decompress(compressed));
  }
  state.SetBytesProcessed(
      static_cast<std::int64_t>(state.iterations() * flat.size()));
}
BENCHMARK(BM_InflateSensorTrace)->Unit(benchmark::kMillisecond);

void BM_SwitchPipelinePacket(benchmark::State& state) {
  // Wall-clock cost of one simulated packet through the encode pipeline
  // (simulation throughput, not switch throughput).
  prog::ZipLineConfig config;
  config.op = prog::SwitchOp::encode;
  auto program = std::make_shared<prog::ZipLineProgram>(config);
  tofino::SwitchModel sw("sw", program);
  Rng rng(6);
  net::EthernetFrame frame;
  frame.dst = net::MacAddress::local(2);
  frame.src = net::MacAddress::local(1);
  frame.ether_type = 0x5A01;
  frame.payload.resize(32);
  for (auto& b : frame.payload) b = static_cast<std::uint8_t>(rng.next_u64());
  SimTime t = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(sw.process(frame, 1, t++));
  }
}
BENCHMARK(BM_SwitchPipelinePacket);

}  // namespace

// Custom main instead of benchmark_main: unless the caller picks its own
// output, every run also writes BENCH_micro_core.json (google-benchmark's
// JSON format) so the perf trajectory is tracked PR-over-PR alongside
// BENCH_fig4_throughput.json.
int main(int argc, char** argv) {
  zipline::bench::require_release_build("bench_micro_core");
  // Recorded in the JSON "context" object: which build produced the
  // numbers and which kernel level the data path dispatched to.
  benchmark::AddCustomContext("zipline_build_type",
                              zipline::bench::build_type());
  benchmark::AddCustomContext("zipline_simd_kernel",
                              zipline::bench::simd_kernel_name());
  benchmark::AddCustomContext("zipline_simd_requested",
                              zipline::bench::simd_requested_name());
  std::vector<char*> args(argv, argv + argc);
  std::string out_flag = "--benchmark_out=BENCH_micro_core.json";
  std::string fmt_flag = "--benchmark_out_format=json";
  bool has_out = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--benchmark_out=", 16) == 0) has_out = true;
  }
  if (!has_out) {
    args.push_back(out_flag.data());
    args.push_back(fmt_flag.data());
  }
  int adjusted_argc = static_cast<int>(args.size());
  benchmark::Initialize(&adjusted_argc, args.data());
  if (benchmark::ReportUnrecognizedArguments(adjusted_argc, args.data())) {
    return 1;
  }
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
