// Table 2 reproduction: the equivalence between Hamming(7, 4) syndromes
// and CRC-3 values of one-hot bit sequences under g = x^3 + x + 1.
//
// Prints both halves of the paper's table side by side and verifies they
// agree bit for bit, plus the §2 worked example (the 42-bit sequence that
// compresses from six 7-bit chunks to two bases).

#include <cstdio>

#include "common/bitvector.hpp"
#include "crc/syndrome_crc.hpp"
#include "hamming/hamming.hpp"

int main() {
  using zipline::bits::BitVector;
  using zipline::crc::Gf2Poly;
  using zipline::crc::SyndromeCrc;
  using zipline::hamming::HammingCode;

  const Gf2Poly g(0b1011);  // x^3 + x + 1
  const SyndromeCrc crc(g, 7);
  const HammingCode code(3, g);

  std::printf("=== Table 2: Hamming (7,4) syndromes == CRC-3 values ===\n");
  std::printf("%-7s %-14s %-10s | %-7s %-14s %-7s %s\n", "error",
              "bit sequence", "syndrome", "poly", "bit sequence", "CRC-3",
              "match");
  bool all_match = true;
  for (std::size_t pos = 0; pos < 7; ++pos) {
    BitVector one_hot(7);
    one_hot.set(pos);
    const std::uint32_t syndrome = code.syndrome_of_position(pos);
    const std::uint32_t crc_value = crc.compute(one_hot);
    const bool match = syndrome == crc_value &&
                       code.error_position(syndrome) == pos;
    all_match &= match;
    char sbits[4] = {
        static_cast<char>('0' + ((syndrome >> 2) & 1)),
        static_cast<char>('0' + ((syndrome >> 1) & 1)),
        static_cast<char>('0' + (syndrome & 1)), '\0'};
    char cbits[4] = {
        static_cast<char>('0' + ((crc_value >> 2) & 1)),
        static_cast<char>('0' + ((crc_value >> 1) & 1)),
        static_cast<char>('0' + (crc_value & 1)), '\0'};
    std::printf("%-7zu (%s)     (%s)    | x^%zu     (%s)     (%s)   %s\n",
                pos, one_hot.to_string().c_str(), sbits, pos,
                one_hot.to_string().c_str(), cbits, match ? "ok" : "MISMATCH");
  }

  // §2 worked example: |0000000|1111111|0100000|1111011|1000000|1011111|
  // maps onto bases {0000, 1111} with 3-bit deviations.
  std::printf("\n§2 worked example (42-bit sequence, six 7-bit chunks):\n");
  const char* chunks[6] = {"0000000", "1111111", "0100000",
                           "1111011", "1000000", "1011111"};
  std::size_t compressed_bits = 4 + 4;  // two 4-bit bases in the dictionary
  for (const auto* text : chunks) {
    const auto word = BitVector::from_string(text);
    const auto canonical = code.canonicalize(word);
    std::printf("  chunk %s -> basis %s, deviation %u%u%u\n", text,
                canonical.basis.to_string().c_str(),
                (canonical.syndrome >> 2) & 1, (canonical.syndrome >> 1) & 1,
                canonical.syndrome & 1);
    compressed_bits += 1 + 3;  // 1-bit basis ID + 3-bit deviation
    // Round-trip sanity.
    if (code.expand(canonical.basis, canonical.syndrome) != word) {
      std::printf("  ROUND TRIP FAILED\n");
      all_match = false;
    }
  }
  std::printf("  42 bits -> %zu bits (dictionary of 8 bits + 6 x 4 bits),"
              " as in the paper\n", compressed_bits);
  std::printf("\n%s\n", all_match ? "Table 2 equivalence verified."
                                  : "MISMATCHES FOUND");
  return all_match ? 0 : 1;
}
