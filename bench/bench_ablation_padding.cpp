// Ablation: the Tofino container-alignment padding (paper §7).
//
// The paper measures a 3% size overhead on processed-but-uncompressed
// packets ("due to padding bits which are necessary to guarantee container
// alignment on the Tofino platform. We reckon that 8 such padding bits
// could be eliminated by an expert P4-16/TNA programmer"). The padding is
// a model switch here, so both worlds can be measured.

#include <cstdio>

#include "sim/replay.hpp"
#include "trace/synthetic.hpp"

int main() {
  using namespace zipline;
  std::printf("=== Ablation: Tofino alignment padding on type-2 packets"
              " ===\n\n");

  trace::SyntheticSensorConfig trace_config;
  trace_config.chunk_count = 300000;
  const auto payloads = trace::generate_synthetic_sensor(trace_config);

  std::printf("%-28s %-10s %-10s %-12s\n", "configuration", "no-table",
              "dynamic", "type2 bytes");
  for (const bool padding : {true, false}) {
    gd::GdParams params;
    params.model_tofino_padding = padding;

    sim::ReplayConfig no_table;
    no_table.switch_config.params = params;
    no_table.table_mode = sim::TableMode::none;
    sim::TraceReplay replay_none(no_table);
    const auto none_result = replay_none.replay(payloads);

    sim::ReplayConfig dynamic;
    dynamic.switch_config.params = params;
    dynamic.table_mode = sim::TableMode::dynamic;
    sim::TraceReplay replay_dyn(dynamic);
    const auto dyn_result = replay_dyn.replay(payloads);

    std::printf("%-28s %-10.3f %-10.3f %-12zu %s\n",
                padding ? "as measured (8 pad bits)" : "expert (no padding)",
                none_result.ratio(), dyn_result.ratio(),
                params.type2_payload_bytes(),
                padding ? "<- paper's artifact" : "");
  }
  std::printf("\nwithout padding the no-table case is exactly 1.00: GD"
              " itself adds no bits\n(syndrome bits replace the parity bits"
              " they evict).\n");
  return 0;
}
