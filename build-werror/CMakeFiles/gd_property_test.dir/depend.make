# Empty dependencies file for gd_property_test.
# This may be replaced when dependencies are built.
