file(REMOVE_RECURSE
  "CMakeFiles/gd_property_test.dir/tests/gd_property_test.cpp.o"
  "CMakeFiles/gd_property_test.dir/tests/gd_property_test.cpp.o.d"
  "gd_property_test"
  "gd_property_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gd_property_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
