# Empty dependencies file for zipline_sim.
# This may be replaced when dependencies are built.
