
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sim/event_queue.cpp" "CMakeFiles/zipline_sim.dir/src/sim/event_queue.cpp.o" "gcc" "CMakeFiles/zipline_sim.dir/src/sim/event_queue.cpp.o.d"
  "/root/repo/src/sim/host.cpp" "CMakeFiles/zipline_sim.dir/src/sim/host.cpp.o" "gcc" "CMakeFiles/zipline_sim.dir/src/sim/host.cpp.o.d"
  "/root/repo/src/sim/link.cpp" "CMakeFiles/zipline_sim.dir/src/sim/link.cpp.o" "gcc" "CMakeFiles/zipline_sim.dir/src/sim/link.cpp.o.d"
  "/root/repo/src/sim/replay.cpp" "CMakeFiles/zipline_sim.dir/src/sim/replay.cpp.o" "gcc" "CMakeFiles/zipline_sim.dir/src/sim/replay.cpp.o.d"
  "/root/repo/src/sim/switch_node.cpp" "CMakeFiles/zipline_sim.dir/src/sim/switch_node.cpp.o" "gcc" "CMakeFiles/zipline_sim.dir/src/sim/switch_node.cpp.o.d"
  "/root/repo/src/sim/testbed.cpp" "CMakeFiles/zipline_sim.dir/src/sim/testbed.cpp.o" "gcc" "CMakeFiles/zipline_sim.dir/src/sim/testbed.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
