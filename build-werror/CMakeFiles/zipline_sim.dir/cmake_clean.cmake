file(REMOVE_RECURSE
  "CMakeFiles/zipline_sim.dir/src/sim/event_queue.cpp.o"
  "CMakeFiles/zipline_sim.dir/src/sim/event_queue.cpp.o.d"
  "CMakeFiles/zipline_sim.dir/src/sim/host.cpp.o"
  "CMakeFiles/zipline_sim.dir/src/sim/host.cpp.o.d"
  "CMakeFiles/zipline_sim.dir/src/sim/link.cpp.o"
  "CMakeFiles/zipline_sim.dir/src/sim/link.cpp.o.d"
  "CMakeFiles/zipline_sim.dir/src/sim/replay.cpp.o"
  "CMakeFiles/zipline_sim.dir/src/sim/replay.cpp.o.d"
  "CMakeFiles/zipline_sim.dir/src/sim/switch_node.cpp.o"
  "CMakeFiles/zipline_sim.dir/src/sim/switch_node.cpp.o.d"
  "CMakeFiles/zipline_sim.dir/src/sim/testbed.cpp.o"
  "CMakeFiles/zipline_sim.dir/src/sim/testbed.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/zipline_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
