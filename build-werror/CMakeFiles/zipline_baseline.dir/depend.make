# Empty dependencies file for zipline_baseline.
# This may be replaced when dependencies are built.
