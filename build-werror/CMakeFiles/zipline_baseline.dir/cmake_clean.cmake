file(REMOVE_RECURSE
  "CMakeFiles/zipline_baseline.dir/src/baseline/dedup.cpp.o"
  "CMakeFiles/zipline_baseline.dir/src/baseline/dedup.cpp.o.d"
  "CMakeFiles/zipline_baseline.dir/src/baseline/deflate.cpp.o"
  "CMakeFiles/zipline_baseline.dir/src/baseline/deflate.cpp.o.d"
  "CMakeFiles/zipline_baseline.dir/src/baseline/huffman.cpp.o"
  "CMakeFiles/zipline_baseline.dir/src/baseline/huffman.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/zipline_baseline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
