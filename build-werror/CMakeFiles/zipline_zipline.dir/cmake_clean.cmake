file(REMOVE_RECURSE
  "CMakeFiles/zipline_zipline.dir/src/zipline/controller.cpp.o"
  "CMakeFiles/zipline_zipline.dir/src/zipline/controller.cpp.o.d"
  "CMakeFiles/zipline_zipline.dir/src/zipline/program.cpp.o"
  "CMakeFiles/zipline_zipline.dir/src/zipline/program.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/zipline_zipline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
