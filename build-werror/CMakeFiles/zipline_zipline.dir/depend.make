# Empty dependencies file for zipline_zipline.
# This may be replaced when dependencies are built.
