# Empty dependencies file for gd_dictionary_test.
# This may be replaced when dependencies are built.
