file(REMOVE_RECURSE
  "CMakeFiles/gd_dictionary_test.dir/tests/gd_dictionary_test.cpp.o"
  "CMakeFiles/gd_dictionary_test.dir/tests/gd_dictionary_test.cpp.o.d"
  "gd_dictionary_test"
  "gd_dictionary_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gd_dictionary_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
