file(REMOVE_RECURSE
  "CMakeFiles/deflate_zlib_test.dir/tests/deflate_zlib_test.cpp.o"
  "CMakeFiles/deflate_zlib_test.dir/tests/deflate_zlib_test.cpp.o.d"
  "deflate_zlib_test"
  "deflate_zlib_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/deflate_zlib_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
