# Empty dependencies file for deflate_zlib_test.
# This may be replaced when dependencies are built.
