# CMAKE generated file: DO NOT EDIT!
# Timestamp file for compiler generated dependencies management for deflate_zlib_test.
