# Empty dependencies file for bench_fig3_compression.
# This may be replaced when dependencies are built.
