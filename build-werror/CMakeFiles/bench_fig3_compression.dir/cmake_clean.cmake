file(REMOVE_RECURSE
  "CMakeFiles/bench_fig3_compression.dir/bench/bench_fig3_compression.cpp.o"
  "CMakeFiles/bench_fig3_compression.dir/bench/bench_fig3_compression.cpp.o.d"
  "bench_fig3_compression"
  "bench_fig3_compression.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig3_compression.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
