file(REMOVE_RECURSE
  "CMakeFiles/syndrome_crc_test.dir/tests/syndrome_crc_test.cpp.o"
  "CMakeFiles/syndrome_crc_test.dir/tests/syndrome_crc_test.cpp.o.d"
  "syndrome_crc_test"
  "syndrome_crc_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/syndrome_crc_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
