# CMAKE generated file: DO NOT EDIT!
# Timestamp file for compiler generated dependencies management for syndrome_crc_test.
