# Empty dependencies file for syndrome_crc_test.
# This may be replaced when dependencies are built.
