# Empty dependencies file for sensor_telemetry.
# This may be replaced when dependencies are built.
