file(REMOVE_RECURSE
  "CMakeFiles/sensor_telemetry.dir/examples/sensor_telemetry.cpp.o"
  "CMakeFiles/sensor_telemetry.dir/examples/sensor_telemetry.cpp.o.d"
  "sensor_telemetry"
  "sensor_telemetry.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sensor_telemetry.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
