# Empty dependencies file for bench_ablation_learning_path.
# This may be replaced when dependencies are built.
