file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_m.dir/bench/bench_ablation_m.cpp.o"
  "CMakeFiles/bench_ablation_m.dir/bench/bench_ablation_m.cpp.o.d"
  "bench_ablation_m"
  "bench_ablation_m.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_m.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
