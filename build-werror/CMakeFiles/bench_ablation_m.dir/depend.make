# Empty dependencies file for bench_ablation_m.
# This may be replaced when dependencies are built.
