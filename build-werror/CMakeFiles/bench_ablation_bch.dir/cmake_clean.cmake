file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_bch.dir/bench/bench_ablation_bch.cpp.o"
  "CMakeFiles/bench_ablation_bch.dir/bench/bench_ablation_bch.cpp.o.d"
  "bench_ablation_bch"
  "bench_ablation_bch.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_bch.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
