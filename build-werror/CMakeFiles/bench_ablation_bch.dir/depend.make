# Empty dependencies file for bench_ablation_bch.
# This may be replaced when dependencies are built.
