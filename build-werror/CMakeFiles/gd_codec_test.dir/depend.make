# Empty dependencies file for gd_codec_test.
# This may be replaced when dependencies are built.
