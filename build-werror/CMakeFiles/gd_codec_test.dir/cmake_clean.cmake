file(REMOVE_RECURSE
  "CMakeFiles/gd_codec_test.dir/tests/gd_codec_test.cpp.o"
  "CMakeFiles/gd_codec_test.dir/tests/gd_codec_test.cpp.o.d"
  "gd_codec_test"
  "gd_codec_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gd_codec_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
