file(REMOVE_RECURSE
  "CMakeFiles/tofino_test.dir/tests/tofino_test.cpp.o"
  "CMakeFiles/tofino_test.dir/tests/tofino_test.cpp.o.d"
  "tofino_test"
  "tofino_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tofino_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
