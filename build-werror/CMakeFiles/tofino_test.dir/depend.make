# Empty dependencies file for tofino_test.
# This may be replaced when dependencies are built.
