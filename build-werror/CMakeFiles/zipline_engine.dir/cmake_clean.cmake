file(REMOVE_RECURSE
  "CMakeFiles/zipline_engine.dir/src/engine/batch.cpp.o"
  "CMakeFiles/zipline_engine.dir/src/engine/batch.cpp.o.d"
  "CMakeFiles/zipline_engine.dir/src/engine/engine.cpp.o"
  "CMakeFiles/zipline_engine.dir/src/engine/engine.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/zipline_engine.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
