# Empty dependencies file for zipline_engine.
# This may be replaced when dependencies are built.
