file(REMOVE_RECURSE
  "CMakeFiles/dns_compression.dir/examples/dns_compression.cpp.o"
  "CMakeFiles/dns_compression.dir/examples/dns_compression.cpp.o.d"
  "dns_compression"
  "dns_compression.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dns_compression.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
