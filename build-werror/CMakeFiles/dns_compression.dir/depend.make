# Empty dependencies file for dns_compression.
# This may be replaced when dependencies are built.
