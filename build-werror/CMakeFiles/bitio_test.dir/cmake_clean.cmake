file(REMOVE_RECURSE
  "CMakeFiles/bitio_test.dir/tests/bitio_test.cpp.o"
  "CMakeFiles/bitio_test.dir/tests/bitio_test.cpp.o.d"
  "bitio_test"
  "bitio_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bitio_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
