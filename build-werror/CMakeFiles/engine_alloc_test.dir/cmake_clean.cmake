file(REMOVE_RECURSE
  "CMakeFiles/engine_alloc_test.dir/tests/engine_alloc_test.cpp.o"
  "CMakeFiles/engine_alloc_test.dir/tests/engine_alloc_test.cpp.o.d"
  "engine_alloc_test"
  "engine_alloc_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/engine_alloc_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
