# Empty dependencies file for engine_alloc_test.
# This may be replaced when dependencies are built.
