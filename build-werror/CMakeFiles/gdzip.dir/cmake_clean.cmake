file(REMOVE_RECURSE
  "CMakeFiles/gdzip.dir/examples/gdzip.cpp.o"
  "CMakeFiles/gdzip.dir/examples/gdzip.cpp.o.d"
  "gdzip"
  "gdzip.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gdzip.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
