# Empty dependencies file for gdzip.
# This may be replaced when dependencies are built.
