# Empty dependencies file for zipline_net.
# This may be replaced when dependencies are built.
