file(REMOVE_RECURSE
  "CMakeFiles/zipline_net.dir/src/net/ethernet.cpp.o"
  "CMakeFiles/zipline_net.dir/src/net/ethernet.cpp.o.d"
  "CMakeFiles/zipline_net.dir/src/net/mac.cpp.o"
  "CMakeFiles/zipline_net.dir/src/net/mac.cpp.o.d"
  "CMakeFiles/zipline_net.dir/src/net/pcap.cpp.o"
  "CMakeFiles/zipline_net.dir/src/net/pcap.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/zipline_net.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
