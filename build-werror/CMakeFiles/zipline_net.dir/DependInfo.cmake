
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/net/ethernet.cpp" "CMakeFiles/zipline_net.dir/src/net/ethernet.cpp.o" "gcc" "CMakeFiles/zipline_net.dir/src/net/ethernet.cpp.o.d"
  "/root/repo/src/net/mac.cpp" "CMakeFiles/zipline_net.dir/src/net/mac.cpp.o" "gcc" "CMakeFiles/zipline_net.dir/src/net/mac.cpp.o.d"
  "/root/repo/src/net/pcap.cpp" "CMakeFiles/zipline_net.dir/src/net/pcap.cpp.o" "gcc" "CMakeFiles/zipline_net.dir/src/net/pcap.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
