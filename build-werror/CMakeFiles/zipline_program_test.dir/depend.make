# Empty dependencies file for zipline_program_test.
# This may be replaced when dependencies are built.
