file(REMOVE_RECURSE
  "CMakeFiles/zipline_program_test.dir/tests/zipline_program_test.cpp.o"
  "CMakeFiles/zipline_program_test.dir/tests/zipline_program_test.cpp.o.d"
  "zipline_program_test"
  "zipline_program_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/zipline_program_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
