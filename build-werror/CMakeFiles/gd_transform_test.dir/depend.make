# Empty dependencies file for gd_transform_test.
# This may be replaced when dependencies are built.
