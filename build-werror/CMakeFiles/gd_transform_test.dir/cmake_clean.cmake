file(REMOVE_RECURSE
  "CMakeFiles/gd_transform_test.dir/tests/gd_transform_test.cpp.o"
  "CMakeFiles/gd_transform_test.dir/tests/gd_transform_test.cpp.o.d"
  "gd_transform_test"
  "gd_transform_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gd_transform_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
