# Empty dependencies file for zipline.
# This may be replaced when dependencies are built.
