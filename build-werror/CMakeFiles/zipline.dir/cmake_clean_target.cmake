file(REMOVE_RECURSE
  "libzipline.a"
)
