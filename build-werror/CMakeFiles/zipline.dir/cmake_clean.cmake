file(REMOVE_RECURSE
  "libzipline.a"
  "libzipline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/zipline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
