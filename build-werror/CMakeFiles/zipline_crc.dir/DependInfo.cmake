
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/crc/crc32.cpp" "CMakeFiles/zipline_crc.dir/src/crc/crc32.cpp.o" "gcc" "CMakeFiles/zipline_crc.dir/src/crc/crc32.cpp.o.d"
  "/root/repo/src/crc/polynomial.cpp" "CMakeFiles/zipline_crc.dir/src/crc/polynomial.cpp.o" "gcc" "CMakeFiles/zipline_crc.dir/src/crc/polynomial.cpp.o.d"
  "/root/repo/src/crc/syndrome_crc.cpp" "CMakeFiles/zipline_crc.dir/src/crc/syndrome_crc.cpp.o" "gcc" "CMakeFiles/zipline_crc.dir/src/crc/syndrome_crc.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
