file(REMOVE_RECURSE
  "CMakeFiles/zipline_crc.dir/src/crc/crc32.cpp.o"
  "CMakeFiles/zipline_crc.dir/src/crc/crc32.cpp.o.d"
  "CMakeFiles/zipline_crc.dir/src/crc/polynomial.cpp.o"
  "CMakeFiles/zipline_crc.dir/src/crc/polynomial.cpp.o.d"
  "CMakeFiles/zipline_crc.dir/src/crc/syndrome_crc.cpp.o"
  "CMakeFiles/zipline_crc.dir/src/crc/syndrome_crc.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/zipline_crc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
