# Empty dependencies file for zipline_crc.
# This may be replaced when dependencies are built.
