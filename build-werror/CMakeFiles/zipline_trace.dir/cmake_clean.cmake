file(REMOVE_RECURSE
  "CMakeFiles/zipline_trace.dir/src/trace/dns.cpp.o"
  "CMakeFiles/zipline_trace.dir/src/trace/dns.cpp.o.d"
  "CMakeFiles/zipline_trace.dir/src/trace/synthetic.cpp.o"
  "CMakeFiles/zipline_trace.dir/src/trace/synthetic.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/zipline_trace.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
