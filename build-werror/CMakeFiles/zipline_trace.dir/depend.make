# Empty dependencies file for zipline_trace.
# This may be replaced when dependencies are built.
