# Empty dependencies file for bench_ablation_idwidth.
# This may be replaced when dependencies are built.
