file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_idwidth.dir/bench/bench_ablation_idwidth.cpp.o"
  "CMakeFiles/bench_ablation_idwidth.dir/bench/bench_ablation_idwidth.cpp.o.d"
  "bench_ablation_idwidth"
  "bench_ablation_idwidth.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_idwidth.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
