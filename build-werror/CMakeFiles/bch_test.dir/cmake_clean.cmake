file(REMOVE_RECURSE
  "CMakeFiles/bch_test.dir/tests/bch_test.cpp.o"
  "CMakeFiles/bch_test.dir/tests/bch_test.cpp.o.d"
  "bch_test"
  "bch_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bch_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
