file(REMOVE_RECURSE
  "CMakeFiles/zipline_pcap.dir/examples/zipline_pcap.cpp.o"
  "CMakeFiles/zipline_pcap.dir/examples/zipline_pcap.cpp.o.d"
  "zipline_pcap"
  "zipline_pcap.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/zipline_pcap.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
