# Empty dependencies file for zipline_pcap.
# This may be replaced when dependencies are built.
