# Empty dependencies file for gd_packet_test.
# This may be replaced when dependencies are built.
