file(REMOVE_RECURSE
  "CMakeFiles/gd_packet_test.dir/tests/gd_packet_test.cpp.o"
  "CMakeFiles/gd_packet_test.dir/tests/gd_packet_test.cpp.o.d"
  "gd_packet_test"
  "gd_packet_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gd_packet_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
