file(REMOVE_RECURSE
  "CMakeFiles/zipline_common.dir/src/common/bitio.cpp.o"
  "CMakeFiles/zipline_common.dir/src/common/bitio.cpp.o.d"
  "CMakeFiles/zipline_common.dir/src/common/bitvector.cpp.o"
  "CMakeFiles/zipline_common.dir/src/common/bitvector.cpp.o.d"
  "CMakeFiles/zipline_common.dir/src/common/hexdump.cpp.o"
  "CMakeFiles/zipline_common.dir/src/common/hexdump.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/zipline_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
