# Empty dependencies file for zipline_common.
# This may be replaced when dependencies are built.
