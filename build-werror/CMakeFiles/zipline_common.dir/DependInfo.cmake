
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/common/bitio.cpp" "CMakeFiles/zipline_common.dir/src/common/bitio.cpp.o" "gcc" "CMakeFiles/zipline_common.dir/src/common/bitio.cpp.o.d"
  "/root/repo/src/common/bitvector.cpp" "CMakeFiles/zipline_common.dir/src/common/bitvector.cpp.o" "gcc" "CMakeFiles/zipline_common.dir/src/common/bitvector.cpp.o.d"
  "/root/repo/src/common/hexdump.cpp" "CMakeFiles/zipline_common.dir/src/common/hexdump.cpp.o" "gcc" "CMakeFiles/zipline_common.dir/src/common/hexdump.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
