# Empty dependencies file for bench_ablation_replay_rate.
# This may be replaced when dependencies are built.
