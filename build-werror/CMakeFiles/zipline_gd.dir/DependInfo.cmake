
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/gd/codec.cpp" "CMakeFiles/zipline_gd.dir/src/gd/codec.cpp.o" "gcc" "CMakeFiles/zipline_gd.dir/src/gd/codec.cpp.o.d"
  "/root/repo/src/gd/dictionary.cpp" "CMakeFiles/zipline_gd.dir/src/gd/dictionary.cpp.o" "gcc" "CMakeFiles/zipline_gd.dir/src/gd/dictionary.cpp.o.d"
  "/root/repo/src/gd/packet.cpp" "CMakeFiles/zipline_gd.dir/src/gd/packet.cpp.o" "gcc" "CMakeFiles/zipline_gd.dir/src/gd/packet.cpp.o.d"
  "/root/repo/src/gd/params.cpp" "CMakeFiles/zipline_gd.dir/src/gd/params.cpp.o" "gcc" "CMakeFiles/zipline_gd.dir/src/gd/params.cpp.o.d"
  "/root/repo/src/gd/stream.cpp" "CMakeFiles/zipline_gd.dir/src/gd/stream.cpp.o" "gcc" "CMakeFiles/zipline_gd.dir/src/gd/stream.cpp.o.d"
  "/root/repo/src/gd/transform.cpp" "CMakeFiles/zipline_gd.dir/src/gd/transform.cpp.o" "gcc" "CMakeFiles/zipline_gd.dir/src/gd/transform.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
