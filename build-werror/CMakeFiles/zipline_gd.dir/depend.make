# Empty dependencies file for zipline_gd.
# This may be replaced when dependencies are built.
