file(REMOVE_RECURSE
  "CMakeFiles/zipline_gd.dir/src/gd/codec.cpp.o"
  "CMakeFiles/zipline_gd.dir/src/gd/codec.cpp.o.d"
  "CMakeFiles/zipline_gd.dir/src/gd/dictionary.cpp.o"
  "CMakeFiles/zipline_gd.dir/src/gd/dictionary.cpp.o.d"
  "CMakeFiles/zipline_gd.dir/src/gd/packet.cpp.o"
  "CMakeFiles/zipline_gd.dir/src/gd/packet.cpp.o.d"
  "CMakeFiles/zipline_gd.dir/src/gd/params.cpp.o"
  "CMakeFiles/zipline_gd.dir/src/gd/params.cpp.o.d"
  "CMakeFiles/zipline_gd.dir/src/gd/stream.cpp.o"
  "CMakeFiles/zipline_gd.dir/src/gd/stream.cpp.o.d"
  "CMakeFiles/zipline_gd.dir/src/gd/transform.cpp.o"
  "CMakeFiles/zipline_gd.dir/src/gd/transform.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/zipline_gd.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
