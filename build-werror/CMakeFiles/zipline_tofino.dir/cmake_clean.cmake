file(REMOVE_RECURSE
  "CMakeFiles/zipline_tofino.dir/src/tofino/phv.cpp.o"
  "CMakeFiles/zipline_tofino.dir/src/tofino/phv.cpp.o.d"
  "CMakeFiles/zipline_tofino.dir/src/tofino/pipeline.cpp.o"
  "CMakeFiles/zipline_tofino.dir/src/tofino/pipeline.cpp.o.d"
  "CMakeFiles/zipline_tofino.dir/src/tofino/table.cpp.o"
  "CMakeFiles/zipline_tofino.dir/src/tofino/table.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/zipline_tofino.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
