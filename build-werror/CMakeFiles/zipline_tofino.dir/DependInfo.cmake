
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/tofino/phv.cpp" "CMakeFiles/zipline_tofino.dir/src/tofino/phv.cpp.o" "gcc" "CMakeFiles/zipline_tofino.dir/src/tofino/phv.cpp.o.d"
  "/root/repo/src/tofino/pipeline.cpp" "CMakeFiles/zipline_tofino.dir/src/tofino/pipeline.cpp.o" "gcc" "CMakeFiles/zipline_tofino.dir/src/tofino/pipeline.cpp.o.d"
  "/root/repo/src/tofino/table.cpp" "CMakeFiles/zipline_tofino.dir/src/tofino/table.cpp.o" "gcc" "CMakeFiles/zipline_tofino.dir/src/tofino/table.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
