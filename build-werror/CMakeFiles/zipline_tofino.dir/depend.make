# Empty dependencies file for zipline_tofino.
# This may be replaced when dependencies are built.
