# Empty dependencies file for gd_stream_test.
# This may be replaced when dependencies are built.
