file(REMOVE_RECURSE
  "CMakeFiles/gd_stream_test.dir/tests/gd_stream_test.cpp.o"
  "CMakeFiles/gd_stream_test.dir/tests/gd_stream_test.cpp.o.d"
  "gd_stream_test"
  "gd_stream_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gd_stream_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
