# Empty dependencies file for deflate_test.
# This may be replaced when dependencies are built.
