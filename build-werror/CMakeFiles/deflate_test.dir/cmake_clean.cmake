file(REMOVE_RECURSE
  "CMakeFiles/deflate_test.dir/tests/deflate_test.cpp.o"
  "CMakeFiles/deflate_test.dir/tests/deflate_test.cpp.o.d"
  "deflate_test"
  "deflate_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/deflate_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
