file(REMOVE_RECURSE
  "CMakeFiles/zipline_hamming.dir/src/hamming/bch.cpp.o"
  "CMakeFiles/zipline_hamming.dir/src/hamming/bch.cpp.o.d"
  "CMakeFiles/zipline_hamming.dir/src/hamming/gf256.cpp.o"
  "CMakeFiles/zipline_hamming.dir/src/hamming/gf256.cpp.o.d"
  "CMakeFiles/zipline_hamming.dir/src/hamming/hamming.cpp.o"
  "CMakeFiles/zipline_hamming.dir/src/hamming/hamming.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/zipline_hamming.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
