# Empty dependencies file for zipline_hamming.
# This may be replaced when dependencies are built.
