file(REMOVE_RECURSE
  "CMakeFiles/wan_pair.dir/examples/wan_pair.cpp.o"
  "CMakeFiles/wan_pair.dir/examples/wan_pair.cpp.o.d"
  "wan_pair"
  "wan_pair.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wan_pair.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
