# Empty dependencies file for wan_pair.
# This may be replaced when dependencies are built.
